package exp

import (
	"strings"
	"testing"

	"burstlink/internal/sink"
)

func TestTableSinkFormatsUnits(t *testing.T) {
	var tab Table
	ts := &TableSink{T: &tab}
	err := ts.Begin(sink.Schema{Name: "t", Cols: []sink.Column{
		{Name: "Name", Kind: sink.String},
		{Name: "N", Kind: sink.Int},
		{Name: "Power", Kind: sink.Float, Unit: UnitMW},
		{Name: "Saving", Kind: sink.Float, Unit: UnitFrac},
		{Name: "Hours", Kind: sink.Float, Unit: UnitHours},
		{Name: "Raw", Kind: sink.Float},
	}})
	if err != nil {
		t.Fatal(err)
	}
	err = ts.Append([]sink.Value{
		sink.Str("seg"), sink.IntV(7), sink.FloatV(412.4), sink.FloatV(0.234), sink.FloatV(3), sink.FloatV(1.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []string{"seg", "7", "412 mW", "23.4%", "3", "1.5"}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tab.Rows))
	}
	for i, cell := range tab.Rows[0] {
		if cell != want[i] {
			t.Errorf("cell %d = %q, want %q", i, cell, want[i])
		}
	}
	if tab.Header[2] != "Power" {
		t.Errorf("header = %v", tab.Header)
	}
}

func TestTableSinkErrors(t *testing.T) {
	var tab Table
	ts := &TableSink{T: &tab}
	if err := ts.Append([]sink.Value{sink.Str("x")}); err == nil {
		t.Fatal("Append before Begin accepted")
	}
	s := sink.Schema{Name: "t", Cols: []sink.Column{{Name: "A", Kind: sink.String}}}
	if err := ts.Begin(s); err != nil {
		t.Fatal(err)
	}
	if err := ts.Begin(s); err == nil {
		t.Fatal("double Begin accepted")
	}
	if err := ts.Append([]sink.Value{sink.Str("a"), sink.Str("b")}); err == nil {
		t.Fatal("wide row accepted")
	}
	if err := (&TableSink{}).Begin(s); err == nil {
		t.Fatal("TableSink without a Table accepted Begin")
	}
}

func TestTableStreamRoundTrip(t *testing.T) {
	tab := Table{
		ID:     "rt",
		Header: []string{"A", "B"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
	}
	var cols sink.Columns
	if err := tab.Stream(&cols); err != nil {
		t.Fatal(err)
	}
	if cols.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", cols.Rows())
	}
	if got := cols.StringAt(1, 1); got != "4" {
		t.Errorf("cell (1,1) = %q, want 4", got)
	}
	if cols.Schema.Cols[0].Name != "A" {
		t.Errorf("schema = %+v", cols.Schema)
	}
}

// TestTableStreamRagged pins the historical JSON behavior for rows wider
// than the header: extra cells land under generated colN names, and
// short rows pad with empty cells.
func TestTableStreamRagged(t *testing.T) {
	tab := Table{
		ID:     "rg",
		Header: []string{"A"},
		Rows:   [][]string{{"x", "extra"}, {"y"}},
	}
	var cols sink.Columns
	if err := tab.Stream(&cols); err != nil {
		t.Fatal(err)
	}
	if got := cols.Schema.Cols[1].Name; got != "col1" {
		t.Errorf("overflow column = %q, want col1", got)
	}
	if got := cols.StringAt(1, 1); got != "" {
		t.Errorf("padded cell = %q, want empty", got)
	}
	b, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"col1": "extra"`) {
		t.Errorf("JSON missing overflow key: %s", b)
	}
}
