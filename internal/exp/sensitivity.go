package exp

import (
	"fmt"

	"burstlink/internal/core"
	"burstlink/internal/pipeline"
	"burstlink/internal/power"
	"burstlink/internal/soc"
	"burstlink/internal/units"
)

// Sensitivity sweeps the power model's calibration parameters ±20% and
// reports how the headline FHD-30FPS reduction moves — the robustness
// check behind trusting the shape results even though the absolute
// component powers are fitted, not measured.
func Sensitivity() (Table, error) {
	s := pipeline.Planar(units.FHD, 60, 30)
	p := pipeline.DefaultPlatform()

	reduction := func(m power.Model) (float64, error) {
		load := power.LoadOf(p, s)
		base, err := pipeline.Conventional(p, s)
		if err != nil {
			return 0, err
		}
		full, err := core.BurstLink(p, s)
		if err != nil {
			return 0, err
		}
		return 1 - float64(m.EvaluateMemo(segCache, full, load).Average)/float64(m.EvaluateMemo(segCache, base, load).Average), nil
	}

	nominal, err := reduction(power.Default())
	if err != nil {
		return Table{}, err
	}

	// Each perturbation builds a fresh model and scales one parameter.
	perturbations := []struct {
		name  string
		apply func(*power.Model, float64)
	}{
		{"BurstExtra", func(m *power.Model, k float64) { m.BurstExtra = units.Power(float64(m.BurstExtra) * k) }},
		{"GPUExtra", func(m *power.Model, k float64) { m.GPUExtra = units.Power(float64(m.GPUExtra) * k) }},
		{"TransitPower", func(m *power.Model, k float64) { m.TransitPower = units.Power(float64(m.TransitPower) * k) }},
		{"DVFSExp", func(m *power.Model, k float64) { m.DVFSExp *= k }},
		{"PanelExp", func(m *power.Model, k float64) { m.PanelExp *= k }},
		{"Panel power", func(m *power.Model, k float64) { scaleRow(m, soc.Panel, k) }},
		{"Uncore power", func(m *power.Model, k float64) { scaleRow(m, soc.Uncore, k) }},
		{"DRAM background", func(m *power.Model, k float64) { scaleRow(m, soc.DRAMDev, k) }},
		{"DRAM op coefficients", func(m *power.Model, k float64) {
			m.DRAM = pipeline.DefaultDRAM()
			m.DRAM.ReadPowerPerGBps = units.Power(float64(m.DRAM.ReadPowerPerGBps) * k)
			m.DRAM.WritePowerPerGBps = units.Power(float64(m.DRAM.WritePowerPerGBps) * k)
		}},
	}

	t := Table{
		ID: "sens", Title: fmt.Sprintf("Parameter sensitivity of the FHD30 reduction (nominal %.1f%%)", nominal*100),
		Header: []string{"Parameter", "-20%", "+20%", "Swing"},
	}
	for _, pert := range perturbations {
		lo := power.Default()
		pert.apply(&lo, 0.8)
		hi := power.Default()
		pert.apply(&hi, 1.2)
		rl, err := reduction(lo)
		if err != nil {
			return t, err
		}
		rh, err := reduction(hi)
		if err != nil {
			return t, err
		}
		swing := rh - rl
		if swing < 0 {
			swing = -swing
		}
		t.Rows = append(t.Rows, []string{pert.name, pct(rl), pct(rh), fmt.Sprintf("%.1f pp", swing*100)})
	}
	t.Notes = append(t.Notes, "every perturbed variant must keep BurstLink strictly ahead of the baseline")
	return t, nil
}

// scaleRow multiplies one component's power in every state. The Comp map
// is shared between Model values returned by Default(), so the row is
// deep-copied first.
func scaleRow(m *power.Model, c soc.Component, k float64) {
	comp := make(map[soc.Component]map[soc.PackageCState]units.Power, len(m.Comp))
	for cc, states := range m.Comp {
		comp[cc] = states
	}
	row := make(map[soc.PackageCState]units.Power, len(m.Comp[c]))
	for st, v := range m.Comp[c] {
		row[st] = units.Power(float64(v) * k)
	}
	comp[c] = row
	m.Comp = comp
}
