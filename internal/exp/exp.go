// Package exp contains one driver per table and figure of the paper's
// evaluation (§6), each producing a printable Table of the same rows or
// series the paper reports. The CLI (cmd/burstlink) prints them, the
// bench harness (bench_test.go) regenerates them, and EXPERIMENTS.md
// records paper-vs-measured values.
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID    string
	Title string
	// Header names the columns; Rows are the data.
	Header []string
	Rows   [][]string
	// Notes carry reproduction caveats shown under the table.
	Notes []string
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment couples an ID with its driver.
type Experiment struct {
	ID    string
	Title string
	Run   func() (Table, error)
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Baseline energy breakdown vs resolution (normalized to FHD)", Fig1},
		{"fig3", "Baseline package C-state timelines (30/60 FPS on 60 Hz)", Fig3},
		{"fig4", "Web browsing → FHD 60FPS streaming: power and residencies", Fig4},
		{"table2", "Per-C-state power and residency: baseline vs BurstLink (FHD 30FPS)", Table2},
		{"fig6", "Frame Buffer Bypass C-state timelines", Fig6},
		{"fig7", "Full BurstLink C-state timelines", Fig7},
		{"fig9", "Planar 30FPS energy reduction: Burst / Bypass / BurstLink", Fig9},
		{"fig10", "Energy breakdown into DRAM / Display / Others", Fig10},
		{"fig11a", "VR energy reduction across five workloads", Fig11a},
		{"fig11b", "VR energy reduction vs per-eye resolution (Rhino)", Fig11b},
		{"fig12", "Planar 60FPS energy reduction", Fig12},
		{"fig13", "BurstLink vs frame-buffer compression (4K/5K, 60 Hz)", Fig13},
		{"fig14a", "Frame Buffer Bypassing on local high-rate playback", Fig14a},
		{"fig14b", "Frame Bursting on four mobile workloads", Fig14b},
		{"zhang", "BurstLink vs Zhang et al. (race-to-sleep + caching)", ZhangCompare},
		{"vip", "BurstLink vs VIP (IP chaining)", VIPCompare},
		{"valid", "Power-model validation against Table 2 anchors", Validation},
	}
}

// FullRegistry appends the extension experiments (battery life, future
// displays, ablations) to the paper's tables and figures.
func FullRegistry() []Experiment { return append(Registry(), extensions()...) }

// ByID returns the experiment with the given ID, searching the paper
// experiments and the extensions.
func ByID(id string) (Experiment, error) {
	for _, e := range FullRegistry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// IDs returns every experiment ID (paper tables and extensions) sorted —
// the listing blkd serves at GET /v1/exp.
func IDs() []string {
	ids := make([]string, 0)
	for _, e := range FullRegistry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// mw formats a power value in mW.
func mw(f float64) string { return fmt.Sprintf("%.0f mW", f) }
