package exp

import (
	"fmt"
	"math"

	"burstlink/internal/core"
	"burstlink/internal/pipeline"
	"burstlink/internal/units"
	"burstlink/internal/vr"
	"burstlink/internal/workload"
)

// TileCompose quantifies how BurstLink composes with viewport-adaptive
// (tile-based) VR streaming — the optimization class of the VR systems
// the paper cites and explicitly positions itself as orthogonal to
// (§6.2's baseline already assumes an optimized VR scheme). Tiling cuts
// the *source* bytes decoded; BurstLink cuts the *display-path* energy;
// together they stack.
func TileCompose() (Table, error) {
	e := newEnv()
	grid, err := vr.NewTileGrid(12, 6)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID: "tiles", Title: "Tile-adaptive VR streaming composed with BurstLink (per-eye 1080x1200)",
		Header: []string{"Workload", "Fetch fraction", "BurstLink", "Tiles only", "Tiles+BurstLink"},
	}
	for _, w := range vr.Workloads() {
		tr, err := w.Trace()
		if err != nil {
			return t, err
		}
		frac := grid.MeanFetchFraction(tr, 100, 15, 10)

		full, err := workload.VRScenario(w, units.VR1080)
		if err != nil {
			return t, err
		}
		// Tile-adaptive: only `frac` of the equirect source is fetched
		// and decoded; model it as a linearly smaller source.
		tiled := full
		scale := math.Sqrt(frac)
		tiled.VRSource = units.Resolution{
			Width:  int(float64(full.VRSource.Width) * scale),
			Height: int(float64(full.VRSource.Height) * scale),
		}

		base, err := pipeline.Conventional(e.p, full)
		if err != nil {
			return t, err
		}
		ref := e.avg(base, full)

		blFull, err := core.BurstLink(e.p, full)
		if err != nil {
			return t, err
		}
		baseTiled, err := pipeline.Conventional(e.p, tiled)
		if err != nil {
			return t, err
		}
		blTiled, err := core.BurstLink(e.p, tiled)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			string(w),
			fmt.Sprintf("%.0f%%", frac*100),
			pct(1 - e.avg(blFull, full)/ref),
			pct(1 - e.avg(baseTiled, tiled)/ref),
			pct(1 - e.avg(blTiled, tiled)/ref),
		})
	}
	t.Notes = append(t.Notes, "tiling cuts source decode bytes; BurstLink cuts display-path energy; the combination dominates either alone")
	return t, nil
}
