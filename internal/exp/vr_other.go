package exp

import (
	"fmt"
	"math"

	"burstlink/internal/baseline"
	"burstlink/internal/core"
	"burstlink/internal/pipeline"
	"burstlink/internal/power"
	"burstlink/internal/units"
	"burstlink/internal/vr"
	"burstlink/internal/workload"
)

// Fig11a reproduces Fig 11(a): full-BurstLink energy reduction for the
// five 360° VR streaming workloads against the optimized-VR baseline.
func Fig11a() (Table, error) {
	e := newEnv()
	t := Table{
		ID: "fig11a", Title: "VR streaming energy reduction (per-eye 1080x1200)",
		Header: []string{"Workload", "Motion (rad/s)", "Baseline", "Reduction"},
	}
	for _, w := range vr.Workloads() {
		s, err := workload.VRScenario(w, units.VR1080)
		if err != nil {
			return t, err
		}
		base, err := pipeline.Conventional(e.p, s)
		if err != nil {
			return t, err
		}
		full, err := core.BurstLink(e.p, s)
		if err != nil {
			return t, err
		}
		ref := e.avg(base, s)
		t.Rows = append(t.Rows, []string{
			string(w),
			fmt.Sprintf("%.2f", s.MotionFactor-1),
			mw(ref),
			pct(1 - e.avg(full, s)/ref),
		})
	}
	t.Notes = append(t.Notes, "paper: up to 33% reduction; compute-dominant workloads benefit less")
	return t, nil
}

// Fig11b reproduces Fig 11(b): VR energy reduction as per-eye resolution
// grows, for the Rhino workload.
func Fig11b() (Table, error) {
	e := newEnv()
	t := Table{
		ID: "fig11b", Title: "VR energy reduction vs per-eye resolution (Rhino)",
		Header: []string{"Per-eye", "Baseline", "Reduction"},
	}
	for _, perEye := range []units.Resolution{units.VR960, units.VR1080, units.VR1280, units.VR1440} {
		s, err := workload.VRScenario(vr.Rhino, perEye)
		if err != nil {
			return t, err
		}
		base, err := pipeline.Conventional(e.p, s)
		if err != nil {
			return t, err
		}
		full, err := core.BurstLink(e.p, s)
		if err != nil {
			return t, err
		}
		ref := e.avg(base, s)
		t.Rows = append(t.Rows, []string{perEye.String(), mw(ref), pct(1 - e.avg(full, s)/ref)})
	}
	t.Notes = append(t.Notes, "paper: benefits decrease as VR resolution grows (compute energy dominates)")
	return t, nil
}

// Fig14a reproduces Fig 14(a): Frame Buffer Bypassing alone on local
// high-rate playback.
func Fig14a() (Table, error) {
	e := newEnv()
	t := Table{
		ID: "fig14a", Title: "Frame Buffer Bypassing on local playback",
		Header: []string{"Config", "Baseline", "Reduction"},
	}
	for _, s := range workload.LocalPlayback() {
		base, err := pipeline.Conventional(e.p, s)
		if err != nil {
			return t, err
		}
		byp, err := core.BypassOnly(e.p, s)
		if err != nil {
			return t, err
		}
		ref := e.avg(base, s)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s [%dHz]", s.Res.Name(), s.Refresh),
			mw(ref),
			pct(1 - e.avg(byp, s)/ref),
		})
	}
	t.Notes = append(t.Notes, "paper: more than 40% reduction on all three configs")
	return t, nil
}

// Fig14b reproduces Fig 14(b): Frame Bursting on the four non-video
// mobile workloads across FHD/QHD/4K panels.
func Fig14b() (Table, error) {
	e := newEnv()
	t := Table{
		ID: "fig14b", Title: "Frame Bursting on mobile workloads",
		Header: []string{"Workload", "FHD", "QHD", "4K"},
	}
	for _, w := range workload.Fig14bWorkloads() {
		row := []string{w.Name}
		for _, res := range []units.Resolution{units.FHD, units.QHD, units.R4K} {
			conv, err := workload.UIConventional(e.p, w, res, 60)
			if err != nil {
				return t, err
			}
			burst, err := workload.UIBurst(e.p, w, res, 60)
			if err != nil {
				return t, err
			}
			load := power.Load{Demand: 1, PanelRatio: float64(res.Pixels()) / float64(units.FHD.Pixels())}
			red := 1 - float64(e.eval(burst, load).Average)/float64(e.eval(conv, load).Average)
			row = append(row, pct(red))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: ~30% conferencing, ~28% MobileMark, ~27% casual gaming")
	return t, nil
}

// ZhangCompare reproduces the §6.4 comparison with Zhang et al.
func ZhangCompare() (Table, error) {
	e := newEnv()
	s := pipeline.Planar(units.R4K, 60, 60)
	base, err := pipeline.Conventional(e.p, s)
	if err != nil {
		return Table{}, err
	}
	base4 := base.Repeat(4)
	z, err := baseline.Zhang(e.p, s, baseline.DefaultZhang())
	if err != nil {
		return Table{}, err
	}
	full, err := core.BurstLink(e.p, s)
	if err != nil {
		return Table{}, err
	}
	ref := e.avg(base4, s)
	zr, zw := z.DRAMTraffic()
	br, bw := base4.DRAMTraffic()
	t := Table{
		ID: "zhang", Title: "BurstLink vs Zhang et al. at 4K 60FPS",
		Header: []string{"Scheme", "Energy reduction", "DRAM traffic vs baseline"},
		Rows: [][]string{
			{"zhang17 (race-to-sleep+caching)", pct(1 - e.avg(z, s)/ref),
				pct(float64(zr+zw) / float64(br+bw))},
			{"burstlink", pct(1 - e.avg(full, s)/ref), pct(dramShare(e, s))},
		},
		Notes: []string{"paper: Zhang et al. ~6% system energy (34% DRAM bandwidth cut); BurstLink ~40.6%"},
	}
	return t, nil
}

func dramShare(e env, s pipeline.Scenario) float64 {
	full, err := core.BurstLink(e.p, s)
	if err != nil {
		return math.NaN()
	}
	base, err := pipeline.Conventional(e.p, s)
	if err != nil {
		return math.NaN()
	}
	fr, fw := full.DRAMTraffic()
	br, bw := base.DRAMTraffic()
	return float64(fr+fw) / float64(br+bw)
}

// VIPCompare reproduces the §6.4 comparison with VIP.
func VIPCompare() (Table, error) {
	e := newEnv()
	s := pipeline.Planar(units.R4K, 60, 60)
	base, err := pipeline.Conventional(e.p, s)
	if err != nil {
		return Table{}, err
	}
	v, err := baseline.VIP(e.p, s)
	if err != nil {
		return Table{}, err
	}
	full, err := core.BurstLink(e.p, s)
	if err != nil {
		return Table{}, err
	}
	ref := e.avg(base, s)
	t := Table{
		ID: "vip", Title: "BurstLink vs VIP at 4K 60FPS",
		Header: []string{"Scheme", "Energy reduction", "Deepest state"},
		Rows: [][]string{
			{"vip (IP chaining)", pct(1 - e.avg(v, s)/ref), v.DeepestState().String()},
			{"burstlink", pct(1 - e.avg(full, s)/ref), full.DeepestState().String()},
		},
		Notes: []string{"paper: BurstLink wins by powering the VD/DC/eDP down for most of the window"},
	}
	return t, nil
}

// Validation reproduces §5.3's model-validation exercise against the
// published Table 2 anchors.
func Validation() (Table, error) {
	e := newEnv()
	s := pipeline.Planar(units.FHD, 60, 30)
	base, err := pipeline.Conventional(e.p, s)
	if err != nil {
		return Table{}, err
	}
	full, err := core.BurstLink(e.p, s)
	if err != nil {
		return Table{}, err
	}
	rows := [][]string{}
	add := func(name string, got, want float64) {
		acc := 100 * (1 - math.Abs(got-want)/want)
		rows = append(rows, []string{name, mw(got), mw(want), fmt.Sprintf("%.1f%%", acc)})
	}
	add("baseline FHD30 AvgP", e.avg(base, s), 2162)
	add("burstlink FHD30 AvgP", e.avg(full, s), 1274)
	return Table{
		ID: "valid", Title: "Model validation vs measured anchors",
		Header: []string{"Quantity", "Model", "Measured (paper)", "Accuracy"},
		Rows:   rows,
		Notes:  []string{"paper: overall model accuracy ~96% across battery-life workloads"},
	}, nil
}
