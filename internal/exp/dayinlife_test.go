package exp

import "testing"

func TestDayInLife(t *testing.T) {
	tab, err := DayInLife()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 5 segments + total", len(tab.Rows))
	}
	var worst, best float64 = 1, 0
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		red := parsePct(t, row[4])
		if red <= 0 {
			t.Errorf("%s: no saving", row[0])
		}
		if red < worst {
			worst = red
		}
		if red > best {
			best = red
		}
	}
	day := parsePct(t, tab.Rows[len(tab.Rows)-1][4])
	// The whole-day saving is a weighted mix: strictly between the worst
	// and best segment savings.
	if day <= worst || day >= best {
		t.Fatalf("day saving %.1f%% outside segment range [%.1f%%, %.1f%%]",
			day*100, worst*100, best*100)
	}
}
