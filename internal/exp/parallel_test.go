package exp

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"burstlink/internal/par"
)

// TestRunAllMatchesSerial pins that the concurrent sweep produces the
// same tables in the same order as running each driver serially.
func TestRunAllMatchesSerial(t *testing.T) {
	exps := Registry()

	defer par.SetWorkers(par.SetWorkers(1))
	want := make([]Table, len(exps))
	for i, e := range exps {
		tab, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		want[i] = tab
	}

	par.SetWorkers(4)
	got, err := RunAll(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("RunAll returned %d tables, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: concurrent table differs from serial run", exps[i].ID)
		}
	}
}

// TestRunAllFirstErrorWins pins the error contract: the earliest failing
// experiment in registry order is reported, wrapped with its ID, even
// when a later experiment also fails.
func TestRunAllFirstErrorWins(t *testing.T) {
	first := errors.New("first failure")
	exps := []Experiment{
		{ID: "ok", Run: func() (Table, error) { return Table{ID: "ok"}, nil }},
		{ID: "bad1", Run: func() (Table, error) { return Table{}, first }},
		{ID: "bad2", Run: func() (Table, error) { return Table{}, errors.New("second failure") }},
	}
	_, err := RunAll(context.Background(), exps)
	if err == nil {
		t.Fatal("RunAll returned nil error")
	}
	if !errors.Is(err, first) {
		t.Fatalf("RunAll error = %v, want wrapped %v", err, first)
	}
	if want := fmt.Sprintf("bad1: %v", first); err.Error() != want {
		t.Fatalf("RunAll error = %q, want %q", err.Error(), want)
	}
}

// TestRunAllHonorsCancel pins the per-cell cancellation contract: under
// an already-canceled ctx no driver starts, and the error carries the
// first skipped experiment's ID exactly like a driver failure would.
func TestRunAllHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	exps := []Experiment{
		{ID: "a", Run: func() (Table, error) { ran.Add(1); return Table{ID: "a"}, nil }},
		{ID: "b", Run: func() (Table, error) { ran.Add(1); return Table{ID: "b"}, nil }},
	}
	_, err := RunAll(ctx, exps)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll error = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d drivers ran under a canceled ctx, want 0", got)
	}
	if want := "a: " + context.Canceled.Error(); err.Error() != want {
		t.Fatalf("RunAll error = %q, want %q", err.Error(), want)
	}
}
