package exp

import (
	"strconv"
	"strings"
	"testing"
)

// parsePct parses "41.2%" into 0.412.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v / 100
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Registry() {
		tab, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		if out := tab.String(); !strings.Contains(out, e.ID) {
			t.Errorf("%s: render missing ID", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown ID should error")
	}
}

func TestFig9ShapeMatchesPaper(t *testing.T) {
	tab, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// Columns: Resolution, Baseline, Burst, Bypass, BurstLink.
	var prevFull float64
	for i, row := range tab.Rows {
		burst := parsePct(t, row[2])
		bypass := parsePct(t, row[3])
		full := parsePct(t, row[4])
		if !(full > bypass && bypass > burst && burst > 0) {
			t.Errorf("row %s: ordering full %v > bypass %v > burst %v violated", row[0], full, bypass, burst)
		}
		if i > 0 && full <= prevFull {
			t.Errorf("row %s: full reduction not increasing with resolution", row[0])
		}
		prevFull = full
	}
	// FHD anchor: full ≈ 37-43%.
	fhdFull := parsePct(t, tab.Rows[0][4])
	if fhdFull < 0.35 || fhdFull > 0.45 {
		t.Errorf("FHD full reduction = %.1f%%, want 37-43%%", fhdFull*100)
	}
}

func TestFig12BeatsFig9(t *testing.T) {
	t9, _ := Fig9()
	t12, _ := Fig12()
	for i := range t9.Rows {
		if parsePct(t, t12.Rows[i][4]) <= parsePct(t, t9.Rows[i][4]) {
			t.Errorf("%s: 60FPS reduction should exceed 30FPS", t9.Rows[i][0])
		}
	}
}

func TestFig11aShape(t *testing.T) {
	tab, err := Fig11a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 workloads", len(tab.Rows))
	}
	var calm, wild float64
	for _, row := range tab.Rows {
		red := parsePct(t, row[3])
		if red < 0.10 || red > 0.45 {
			t.Errorf("%s: reduction %.1f%% outside the paper's band (≤33%%, positive)", row[0], red*100)
		}
		switch row[0] {
		case "Timelapse":
			calm = red
		case "Rollercoaster":
			wild = red
		}
	}
	// Compute-dominant (high-motion) workloads benefit less.
	if wild >= calm {
		t.Errorf("Rollercoaster %.1f%% should benefit less than Timelapse %.1f%%", wild*100, calm*100)
	}
}

func TestFig11bDecreasingWithResolution(t *testing.T) {
	tab, err := Fig11b()
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, row := range tab.Rows {
		red := parsePct(t, row[2])
		if red >= prev {
			t.Errorf("%s: reduction %.1f%% should decrease with VR resolution", row[0], red*100)
		}
		prev = red
	}
}

func TestFig13FBCFarBelowBurstLink(t *testing.T) {
	tab, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		fbc50 := parsePct(t, row[3])
		bl := parsePct(t, row[4])
		if bl < 2.5*fbc50 {
			t.Errorf("%s: BurstLink %.1f%% should dwarf FBC@50%% %.1f%%", row[0], bl*100, fbc50*100)
		}
		if fbc20 := parsePct(t, row[1]); fbc20 >= fbc50 {
			t.Errorf("%s: FBC not monotone in rate", row[0])
		}
	}
}

func TestFig14aOver40Percent(t *testing.T) {
	tab, err := Fig14a()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if red := parsePct(t, row[2]); red < 0.35 {
			t.Errorf("%s: bypass reduction = %.1f%%, paper reports > 40%%", row[0], red*100)
		}
	}
}

func TestFig14bBand(t *testing.T) {
	tab, err := Fig14b()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for col := 1; col <= 3; col++ {
			red := parsePct(t, row[col])
			if red < 0.15 || red > 0.45 {
				t.Errorf("%s col %d: reduction %.1f%% outside 15-45%% band (paper ~27-30%%)", row[0], col, red*100)
			}
		}
	}
}

func TestZhangComparisonShape(t *testing.T) {
	tab, err := ZhangCompare()
	if err != nil {
		t.Fatal(err)
	}
	z := parsePct(t, tab.Rows[0][1])
	bl := parsePct(t, tab.Rows[1][1])
	if z < 0.01 || z > 0.15 {
		t.Errorf("Zhang reduction = %.1f%%, want small (~6%%)", z*100)
	}
	if bl < 3*z {
		t.Errorf("BurstLink %.1f%% should be several times Zhang %.1f%%", bl*100, z*100)
	}
}

func TestVIPComparisonShape(t *testing.T) {
	tab, err := VIPCompare()
	if err != nil {
		t.Fatal(err)
	}
	v := parsePct(t, tab.Rows[0][1])
	bl := parsePct(t, tab.Rows[1][1])
	if bl <= v {
		t.Errorf("BurstLink %.1f%% must beat VIP %.1f%%", bl*100, v*100)
	}
	if tab.Rows[0][2] == "C9" {
		t.Error("VIP must not reach C9")
	}
	if tab.Rows[1][2] != "C9" {
		t.Error("BurstLink must reach C9")
	}
}

func TestValidationAccuracy(t *testing.T) {
	tab, err := Validation()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		acc, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 96 {
			t.Errorf("%s: accuracy %.1f%% below the paper's 96%%", row[0], acc)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"baseline", "burstlink", "C0", "C9", "AvgP"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}
