package exp

import (
	"fmt"
	"strconv"

	"burstlink/internal/sink"
)

// This file bridges the experiment tables and the columnar sink layer in
// both directions. Producers (DayInLife, the fleet walkthroughs) declare
// a typed sink.Schema and append typed rows; TableSink renders that
// stream into a printable Table using the schema's unit hints, so the
// text output is byte-identical to the hand-formatted tables it
// replaced. Consumers go the other way: Table.Stream replays a finished
// table as a row stream into any sink.Sink, which is how Table.JSON
// rides the columnar store and how aggregating sinks can observe
// experiment output without a bespoke adapter per table.

// Unit hints TableSink knows how to format. Units are free-form strings
// on sink.Column; these are the conventions the experiment schemas use.
const (
	// UnitMW renders a float as whole milliwatts ("412 mW").
	UnitMW = "mw"
	// UnitFrac renders a fraction as a percentage ("23.4%").
	UnitFrac = "frac"
	// UnitHours renders whole hours ("3").
	UnitHours = "h"
)

// cellString formats one typed cell for table display using the
// column's kind and unit hint.
func cellString(col sink.Column, v sink.Value) string {
	switch col.Kind {
	case sink.String:
		return v.S
	case sink.Int:
		return strconv.FormatInt(v.I, 10)
	}
	switch col.Unit {
	case UnitMW:
		return mw(v.F)
	case UnitFrac:
		return pct(v.F)
	case UnitHours:
		return fmt.Sprintf("%.0f", v.F)
	default:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	}
}

// TableSink renders a typed row stream into the Table it wraps: the
// schema's column names become the header and every appended row is
// formatted with the schema's unit hints. It is how experiment drivers
// produce their printable tables through the same interface the fleet
// executor streams into — a driver that appends to a Tee of a TableSink
// and a sink.Agg gets its table and its aggregate from one pass.
type TableSink struct {
	T      *Table
	schema sink.Schema
	begun  bool
}

// Begin fixes the schema and installs the header.
func (ts *TableSink) Begin(s sink.Schema) error {
	if ts.begun {
		return fmt.Errorf("exp: Begin called twice on TableSink %q", s.Name)
	}
	if ts.T == nil {
		return fmt.Errorf("exp: TableSink has no Table")
	}
	ts.schema = s
	ts.begun = true
	header := make([]string, len(s.Cols))
	for i, col := range s.Cols {
		header[i] = col.Name
	}
	ts.T.Header = header
	return nil
}

// Append formats the row and adds it to the table.
func (ts *TableSink) Append(row []sink.Value) error {
	if !ts.begun {
		return fmt.Errorf("exp: Append before Begin")
	}
	if len(row) != len(ts.schema.Cols) {
		return fmt.Errorf("exp: row has %d cells, schema %q has %d columns", len(row), ts.schema.Name, len(ts.schema.Cols))
	}
	cells := make([]string, len(row))
	for i, col := range ts.schema.Cols {
		cells[i] = cellString(col, row[i])
	}
	ts.T.Rows = append(ts.T.Rows, cells)
	return nil
}

// Flush is a no-op: the table is always current.
func (ts *TableSink) Flush() error { return nil }

// Schema returns the table's column layout as a sink schema: one string
// column per header cell, plus anonymous columns when a row is wider
// than the header (ragged tables render extra cells under "colN" keys,
// matching what JSON has always emitted).
func (t Table) Schema() sink.Schema {
	width := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > width {
			width = len(row)
		}
	}
	s := sink.Schema{Name: t.ID, Cols: make([]sink.Column, width)}
	for i := range s.Cols {
		name := fmt.Sprintf("col%d", i)
		if i < len(t.Header) {
			name = t.Header[i]
		}
		s.Cols[i] = sink.Column{Name: name, Kind: sink.String}
	}
	return s
}

// Stream replays the finished table as a row stream: Begin with the
// table's schema, one Append per row (short rows pad with empty cells),
// then Flush. It is the consumer-side bridge — JSON rendering and any
// aggregating sink ride it instead of reaching into Rows.
func (t Table) Stream(snk sink.Sink) error {
	schema := t.Schema()
	if err := snk.Begin(schema); err != nil {
		return err
	}
	row := make([]sink.Value, len(schema.Cols))
	for _, cells := range t.Rows {
		for i := range row {
			row[i] = sink.Value{}
			if i < len(cells) {
				row[i] = sink.Str(cells[i])
			}
		}
		if err := snk.Append(row); err != nil {
			return err
		}
	}
	return snk.Flush()
}
