package exp

import "testing"

func TestSensitivityRuns(t *testing.T) {
	tab, err := Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		lo := parsePct(t, row[1])
		hi := parsePct(t, row[2])
		// The headline conclusion survives every ±20% perturbation:
		// BurstLink stays well ahead of the baseline.
		if lo < 0.25 || hi < 0.25 {
			t.Errorf("%s: reduction fell to %.1f%%/%.1f%% — conclusion not robust", row[0], lo*100, hi*100)
		}
		if lo > 0.60 || hi > 0.60 {
			t.Errorf("%s: reduction ballooned to %.1f%%/%.1f%%", row[0], lo*100, hi*100)
		}
	}
}

func TestSensitivityDoesNotMutateDefaults(t *testing.T) {
	// Running the sweep must not corrupt the shared Default() tables.
	before, err := Validation()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sensitivity(); err != nil {
		t.Fatal(err)
	}
	after, err := Validation()
	if err != nil {
		t.Fatal(err)
	}
	for i := range before.Rows {
		if before.Rows[i][1] != after.Rows[i][1] {
			t.Fatalf("model drifted: %v -> %v", before.Rows[i], after.Rows[i])
		}
	}
}
