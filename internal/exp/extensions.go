package exp

import (
	"fmt"
	"strconv"

	"burstlink/internal/capture"
	"burstlink/internal/core"
	"burstlink/internal/pipeline"
	"burstlink/internal/power"
	"burstlink/internal/soc"
	"burstlink/internal/units"
	"burstlink/internal/workload"
)

// Extension experiments beyond the paper's figures: battery-life
// translation (§1's motivation), the future-display trend (§1/§8: "an
// even higher energy reduction in future video streaming systems with
// higher display resolutions and/or display refresh rates"), and the
// design ablations of DESIGN.md §4.4.

// extensions lists the extra experiments appended to the Registry.
func extensions() []Experiment {
	return []Experiment{
		{"battery", "Battery life for video playback (38.2 Wh tablet)", Battery},
		{"future", "Future displays: reduction at higher resolutions/refresh rates", FutureDisplays},
		{"abl-dcbuf", "Ablation: DC buffer (chunk) size", AblationDCBuffer},
		{"abl-edp", "Ablation: burst link generation", AblationEDP},
		{"abl-orch", "Ablation: PMU-firmware orchestration offload", AblationOrch},
		{"capture", "Generalization (§4.5): camera capture with producer-side remote memory", Capture},
		{"sens", "Sensitivity of the headline result to model parameters", Sensitivity},
		{"abl-drfb", "Ablation: bursting into a single RFB vs the DRFB", AblationDRFB},
		{"tiles", "Composition with viewport-adaptive (tile-based) VR streaming", TileCompose},
		{"dayinlife", "A composed 9-hour usage day: baseline vs BurstLink", DayInLife},
		{"session", "End-to-end 4K60 streaming session under every scheme", Session},
	}
}

// Battery translates the Fig 9/12 scenarios into battery life.
func Battery() (Table, error) {
	e := newEnv()
	bat := workload.SurfaceProBattery()
	t := Table{
		ID: "battery", Title: "Video playback battery life, baseline vs BurstLink",
		Header: []string{"Scenario", "Baseline", "BurstLink", "Gain"},
	}
	for _, cfg := range []struct {
		res units.Resolution
		fps units.FPS
	}{{units.FHD, 30}, {units.FHD, 60}, {units.R4K, 30}, {units.R4K, 60}} {
		s := pipeline.Planar(cfg.res, 60, cfg.fps)
		base, err := pipeline.Conventional(e.p, s)
		if err != nil {
			return t, err
		}
		full, err := core.BurstLink(e.p, s)
		if err != nil {
			return t, err
		}
		lb := bat.Life(units.Power(e.avg(base, s)))
		lf := bat.Life(units.Power(e.avg(full, s)))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s %dFPS", cfg.res.Name(), cfg.fps),
			workload.LifeString(lb), workload.LifeString(lf),
			fmt.Sprintf("+%.0f%%", 100*(float64(lf)/float64(lb)-1)),
		})
	}
	return t, nil
}

// FutureDisplays sweeps next-generation display configurations.
func FutureDisplays() (Table, error) {
	e := newEnv()
	t := Table{
		ID: "future", Title: "BurstLink reduction on future display configurations",
		Header: []string{"Config", "Baseline", "Reduction"},
	}
	// A 4K@120 burst needs 7.68 ms of the 8.33 ms window — with
	// orchestration it just misses on eDP 1.4, so the >60 Hz
	// configurations assume the next link generation (2x HBR3), exactly
	// the "future display systems" the paper projects onto.
	r8k := units.Resolution{Width: 7680, Height: 4320}
	cases := []struct {
		name    string
		s       pipeline.Scenario
		linkMul float64
	}{
		{"4K@60 (today)", pipeline.Planar(units.R4K, 60, 60), 1},
		{"4K@120", pipeline.Planar(units.R4K, 120, 120), 2},
		{"5K@120", pipeline.Planar(units.R5K, 120, 120), 2},
		{"8K@60", pipeline.Planar(r8k, 60, 60), 2},
	}
	for _, c := range cases {
		p := e.p
		p.Link.LaneRate = units.DataRate(float64(p.Link.LaneRate) * c.linkMul)
		base, err := pipeline.Conventional(p, c.s)
		if err != nil {
			return t, err
		}
		load := power.LoadOf(p, c.s)
		rb := float64(e.eval(base, load).Average)
		red := "infeasible"
		if full, err := core.BurstLink(p, c.s); err == nil {
			red = pct(1 - float64(e.eval(full, load).Average)/rb)
		}
		t.Rows = append(t.Rows, []string{c.name, mw(rb), red})
	}
	t.Notes = append(t.Notes,
		"paper §8: benefits increase as display resolution and/or refresh rate increases",
		">60Hz rows assume a 2x-HBR3 link: eDP 1.4 cannot burst a 4K frame inside an 8.3 ms window")
	return t, nil
}

// AblationDCBuffer sweeps the DC chunk size at 4K 30FPS.
func AblationDCBuffer() (Table, error) {
	e := newEnv()
	s := pipeline.Planar(units.R4K, 60, 30)
	t := Table{
		ID: "abl-dcbuf", Title: "DC buffer size vs BurstLink reduction (4K 30FPS)",
		Header: []string{"Buffer", "C2 entries/frame (baseline)", "Reduction"},
	}
	for _, size := range []units.ByteSize{128 * units.KB, 256 * units.KB, 512 * units.KB, units.MB, 2 * units.MB} {
		p := e.p
		p.DCBufSize = size
		base, err := pipeline.Conventional(p, s)
		if err != nil {
			return t, err
		}
		full, err := core.BurstLink(p, s)
		if err != nil {
			return t, err
		}
		load := power.LoadOf(p, s)
		rb := float64(e.eval(base, load).Average)
		rf := float64(e.eval(full, load).Average)
		t.Rows = append(t.Rows, []string{
			size.String(),
			strconv.Itoa(base.Entries()[soc.C2]),
			pct(1 - rf/rb),
		})
	}
	return t, nil
}

// AblationEDP sweeps link generations at the link-bound 5K60 point.
func AblationEDP() (Table, error) {
	e := newEnv()
	s := pipeline.Planar(units.R5K, 60, 60)
	t := Table{
		ID: "abl-edp", Title: "Burst link bandwidth vs reduction (5K 60FPS)",
		Header: []string{"Link", "Max bandwidth", "Reduction"},
	}
	for _, c := range []struct {
		name string
		lane units.DataRate
	}{
		{"eDP 1.3 (HBR2)", 5.4 * units.Gbps},
		{"eDP 1.4 (HBR3)", 8.1 * units.Gbps},
		{"2x HBR3", 16.2 * units.Gbps},
	} {
		p := e.p
		p.Link.LaneRate = c.lane
		base, err := pipeline.Conventional(p, s)
		if err != nil {
			return t, err
		}
		load := power.LoadOf(p, s)
		rb := float64(e.eval(base, load).Average)
		red := "infeasible (burst misses the window)"
		if full, err := core.BurstLink(p, s); err == nil {
			red = pct(1 - float64(e.eval(full, load).Average)/rb)
		}
		t.Rows = append(t.Rows, []string{c.name, p.Link.MaxBandwidth().String(), red})
	}
	return t, nil
}

// AblationOrch compares BurstLink with and without the PMU orchestration
// offload (§4.4 change 2, §6.4's ~10% → <5% claim).
func AblationOrch() (Table, error) {
	e := newEnv()
	s := pipeline.Planar(units.FHD, 60, 30)
	t := Table{
		ID: "abl-orch", Title: "PMU orchestration offload (FHD 30FPS)",
		Header: []string{"Variant", "C0 residency", "Reduction"},
	}
	base, err := pipeline.Conventional(e.p, s)
	if err != nil {
		return t, err
	}
	load := power.LoadOf(e.p, s)
	rb := float64(e.eval(base, load).Average)
	for _, c := range []struct {
		name    string
		offload bool
	}{{"with offload", true}, {"without offload", false}} {
		p := e.p
		if !c.offload {
			p.OrchTimeBL = p.OrchTime
		}
		full, err := core.BurstLink(p, s)
		if err != nil {
			return t, err
		}
		c0 := full.Residency()[soc.C0]
		t.Rows = append(t.Rows, []string{
			c.name, pct(c0), pct(1 - float64(e.eval(full, load).Average)/rb),
		})
	}
	return t, nil
}

// Capture reports the §4.5 producer-side generalization: DRAM traffic of
// a 4K30 recording session with and without a sensor-side remote buffer.
func Capture() (Table, error) {
	cfg := capture.DefaultConfig()
	conv, err := capture.RunConventional(cfg)
	if err != nil {
		return Table{}, err
	}
	remote, err := capture.RunRemoteBuffer(cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID: "capture", Title: "4K30 video capture: DRAM traffic per second of recording",
		Header: []string{"Dataflow", "DRAM read", "DRAM write", "P2P", "DRAM cut"},
		Rows: [][]string{
			{"conventional (sensor→DRAM→ISP→DRAM→encoder)",
				conv.DRAMRead.String(), conv.DRAMWrite.String(), "0 B", ""},
			{"remote buffer (sensor→ISP→encoder, §4.5)",
				remote.DRAMRead.String(), remote.DRAMWrite.String(), remote.P2PBytes.String(),
				fmt.Sprintf("%.0fx", float64(conv.TotalDRAM())/float64(remote.TotalDRAM()))},
		},
		Notes: []string{"paper §4.5: remote memory near the data producer removes the raw-frame DRAM round trips"},
	}
	return t, nil
}
