package exp

import "testing"

func TestTileComposeStacks(t *testing.T) {
	tab, err := TileCompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		bl := parsePct(t, row[2])
		tiles := parsePct(t, row[3])
		both := parsePct(t, row[4])
		// The combination dominates either technique alone.
		if both <= bl || both <= tiles {
			t.Errorf("%s: combined %.1f%% should beat BurstLink %.1f%% and tiles %.1f%%",
				row[0], both*100, bl*100, tiles*100)
		}
		// The techniques are complementary, not additive: the combined
		// saving is below the naive sum.
		if both >= bl+tiles {
			t.Errorf("%s: combined %.1f%% should be below the naive sum %.1f%%",
				row[0], both*100, (bl+tiles)*100)
		}
	}
}
