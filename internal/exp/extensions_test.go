package exp

import (
	"strings"
	"testing"
)

func TestExtensionExperimentsRun(t *testing.T) {
	for _, e := range extensions() {
		tab, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
	}
}

func TestFullRegistryIncludesExtensions(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range FullRegistry() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment ID %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig9", "battery", "future", "abl-dcbuf", "abl-edp", "abl-orch"} {
		if !ids[want] {
			t.Errorf("registry missing %q", want)
		}
	}
	if _, err := ByID("battery"); err != nil {
		t.Error(err)
	}
}

func TestBatteryGainPositiveAndGrowing(t *testing.T) {
	tab, err := Battery()
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range tab.Rows {
		gain := parsePct(t, strings.TrimPrefix(row[3], "+"))
		if gain <= 0.3 {
			t.Errorf("%s: battery gain %.0f%%, want substantial", row[0], gain*100)
		}
		if gain <= prev {
			t.Errorf("%s: gain should grow with workload intensity", row[0])
		}
		prev = gain
	}
}

func TestFutureDisplaysTrend(t *testing.T) {
	tab, err := FutureDisplays()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §8 claim: reduction grows for future configurations.
	today := parsePct(t, tab.Rows[0][2])
	for _, row := range tab.Rows[1:] {
		if row[2] == "infeasible" {
			t.Errorf("%s unexpectedly infeasible", row[0])
			continue
		}
		if parsePct(t, row[2]) <= today {
			t.Errorf("%s: reduction %s not above today's %s", row[0], row[2], tab.Rows[0][2])
		}
	}
}

func TestAblationDCBufferMonotone(t *testing.T) {
	tab, err := AblationDCBuffer()
	if err != nil {
		t.Fatal(err)
	}
	// Smaller chunks → more C2 entries in the baseline → larger relative
	// BurstLink advantage.
	prev := 2.0
	for _, row := range tab.Rows {
		red := parsePct(t, row[2])
		if red >= prev {
			t.Errorf("buffer %s: reduction %.1f%% should fall as chunks grow", row[0], red*100)
		}
		prev = red
	}
}

func TestAblationEDPShowsInfeasibility(t *testing.T) {
	tab, err := AblationEDP()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Rows[0][2], "infeasible") {
		t.Errorf("eDP 1.3 should be infeasible at 5K60 burst: %q", tab.Rows[0][2])
	}
	// Faster links help.
	if parsePct(t, tab.Rows[2][2]) <= parsePct(t, tab.Rows[1][2]) {
		t.Error("2x link should beat eDP 1.4")
	}
}

func TestAblationOrchOffloadHelps(t *testing.T) {
	tab, err := AblationOrch()
	if err != nil {
		t.Fatal(err)
	}
	with := parsePct(t, tab.Rows[0][2])
	without := parsePct(t, tab.Rows[1][2])
	if with <= without {
		t.Errorf("offload %.1f%% should beat no-offload %.1f%%", with*100, without*100)
	}
	// §6.4: orchestration drops from ~10% to <5% of frame time; our C0
	// residencies reflect the offload.
	c0With := parsePct(t, tab.Rows[0][1])
	c0Without := parsePct(t, tab.Rows[1][1])
	if c0With >= c0Without {
		t.Error("offload should shrink C0 residency")
	}
}
