package exp

import (
	"context"
	"fmt"

	"burstlink/internal/par"
)

// RunAll executes the given experiments on the worker pool and returns
// their tables in registry order, exactly as a serial loop over e.Run()
// would. Every driver is a pure function of init-time tables (the power
// model, workload definitions, and codec constants are all read-only
// after package init), so drivers run concurrently without shared state.
//
// Cancellation is checked per sweep cell: a canceled ctx stops cells
// that have not started yet (drivers themselves are not preemptible),
// so an interrupted CLI or a timed-out service request does not pin the
// worker pool for the rest of the sweep.
//
// All experiments run to completion even when one fails; the first error
// in registry order is returned, wrapped with its experiment ID to match
// the serial loop's reporting.
func RunAll(ctx context.Context, exps []Experiment) ([]Table, error) {
	type result struct {
		tab Table
		err error
	}
	results := par.Map(len(exps), func(i int) result {
		if err := ctx.Err(); err != nil {
			return result{err: err}
		}
		tab, err := exps[i].Run()
		return result{tab, err}
	})
	tables := make([]Table, len(results))
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("%s: %w", exps[i].ID, r.err)
		}
		tables[i] = r.tab
	}
	return tables, nil
}
