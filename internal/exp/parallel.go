package exp

import (
	"fmt"

	"burstlink/internal/par"
)

// RunAll executes the given experiments on the worker pool and returns
// their tables in registry order, exactly as a serial loop over e.Run()
// would. Every driver is a pure function of init-time tables (the power
// model, workload definitions, and codec constants are all read-only
// after package init), so drivers run concurrently without shared state.
//
// All experiments run to completion even when one fails; the first error
// in registry order is returned, wrapped with its experiment ID to match
// the serial loop's reporting.
func RunAll(exps []Experiment) ([]Table, error) {
	type result struct {
		tab Table
		err error
	}
	results := par.Map(len(exps), func(i int) result {
		tab, err := exps[i].Run()
		return result{tab, err}
	})
	tables := make([]Table, len(results))
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("%s: %w", exps[i].ID, r.err)
		}
		tables[i] = r.tab
	}
	return tables, nil
}
