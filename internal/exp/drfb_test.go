package exp

import (
	"strconv"
	"testing"
)

func TestAblationDRFB(t *testing.T) {
	tab, err := AblationDRFB()
	if err != nil {
		t.Fatal(err)
	}
	singleTears, _ := strconv.Atoi(tab.Rows[0][1])
	doubleTears, _ := strconv.Atoi(tab.Rows[1][1])
	if singleTears == 0 {
		t.Fatal("bursting into a single RFB must tear")
	}
	if doubleTears != 0 {
		t.Fatalf("DRFB tears = %d, want 0", doubleTears)
	}
	// Both display every frame exactly once.
	if tab.Rows[0][3] != tab.Rows[1][3] {
		t.Fatal("frame counts should match")
	}
}
