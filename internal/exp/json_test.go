package exp

import (
	"encoding/json"
	"testing"
)

func TestTableJSON(t *testing.T) {
	tab, err := Validation()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID     string              `json:"id"`
		Header []string            `json:"header"`
		Rows   []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "valid" || len(decoded.Rows) != len(tab.Rows) {
		t.Fatalf("decoded = %+v", decoded)
	}
	// Rows are keyed by header names.
	if _, ok := decoded.Rows[0]["Accuracy"]; !ok {
		t.Fatalf("row keys = %v", decoded.Rows[0])
	}
}

func TestAllTablesSerializable(t *testing.T) {
	for _, e := range FullRegistry() {
		tab, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if _, err := tab.JSON(); err != nil {
			t.Errorf("%s: JSON: %v", e.ID, err)
		}
	}
}
