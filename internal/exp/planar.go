package exp

import (
	"fmt"

	"burstlink/internal/baseline"
	"burstlink/internal/core"
	"burstlink/internal/memo"
	"burstlink/internal/pipeline"
	"burstlink/internal/power"
	"burstlink/internal/soc"
	"burstlink/internal/trace"
	"burstlink/internal/units"
	"burstlink/internal/workload"
)

// segCache is the package-shared delta-simulation segment cache
// (internal/memo). Every experiment evaluates period timelines of the
// same default platform and model, so RunAll, the sensitivity probes,
// and the day-in-a-life sweep reuse each other's power integrations —
// bit-identically, since the memoized evaluation replays the exact
// scratch fold.
var segCache = memo.NewCache(4096)

// env bundles the shared experiment environment.
type env struct {
	p    pipeline.Platform
	m    power.Model
	memo *memo.Cache
}

func newEnv() env {
	return env{p: pipeline.DefaultPlatform(), m: power.Default(), memo: segCache}
}

// avg evaluates a timeline's average power for a scenario.
func (e env) avg(tl trace.Timeline, s pipeline.Scenario) float64 {
	return float64(e.eval(tl, power.LoadOf(e.p, s)).Average)
}

// eval evaluates a timeline under an explicit load through the shared
// segment cache.
func (e env) eval(tl trace.Timeline, load power.Load) power.Result {
	return e.m.EvaluateMemo(e.memo, tl, load)
}

// schemes runs baseline + the three BurstLink variants for a scenario and
// returns average powers.
func (e env) schemes(s pipeline.Scenario) (base, burst, bypass, full float64, err error) {
	tb, err := pipeline.Conventional(e.p, s)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	tburst, err := core.BurstOnly(e.p, s)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	tbyp, err := core.BypassOnly(e.p, s)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	tfull, err := core.BurstLink(e.p, s)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return e.avg(tb, s), e.avg(tburst, s), e.avg(tbyp, s), e.avg(tfull, s), nil
}

// Fig1 reproduces Fig 1: baseline energy breakdown (DRAM / Display /
// Others) while streaming 30 FPS video at FHD/QHD/4K, normalized to the
// FHD total.
func Fig1() (Table, error) {
	e := newEnv()
	var fhdTotal float64
	t := Table{
		ID: "fig1", Title: "Baseline streaming energy, normalized to FHD total",
		Header: []string{"Resolution", "DRAM", "Display", "Others", "Total"},
	}
	for _, res := range []units.Resolution{units.FHD, units.QHD, units.R4K} {
		s := pipeline.Planar(res, 60, 30)
		tl, err := pipeline.Conventional(e.p, s)
		if err != nil {
			return t, err
		}
		bd := e.m.BreakdownOf(tl, power.LoadOf(e.p, s))
		if res == units.FHD {
			fhdTotal = float64(bd.Total())
		}
		t.Rows = append(t.Rows, []string{
			res.Name(),
			pct(float64(bd.DRAM) / fhdTotal),
			pct(float64(bd.Display) / fhdTotal),
			pct(float64(bd.Others) / fhdTotal),
			pct(float64(bd.Total()) / fhdTotal),
		})
	}
	t.Notes = append(t.Notes, "paper: DRAM alone exceeds 30% of system energy at 4K; our model reaches ~17% (DRAM-rail attribution differs) but reproduces the growth trend")
	return t, nil
}

// Fig3 reproduces Fig 3: the baseline package C-state timeline for 30 and
// 60 FPS video on a 60 Hz panel, rendered as residencies and an ASCII
// timeline (idealized PSR-deep variant included for the 30 FPS case).
func Fig3() (Table, error) {
	e := newEnv()
	t := Table{
		ID: "fig3", Title: "Baseline C-state timelines (FHD on 60 Hz)",
		Header: []string{"Case", "Timeline (one period)", "Residency"},
	}
	for _, fps := range []units.FPS{30, 60} {
		s := pipeline.Planar(units.FHD, 60, fps)
		tl, err := pipeline.Conventional(e.p, s)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d FPS", fps), tl.ASCII(48), tl.String(),
		})
	}
	deep := e.p
	deep.PSRDeep = true
	tl, err := pipeline.Conventional(deep, pipeline.Planar(units.FHD, 60, 30))
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"30 FPS (ideal PSR→C9)", tl.ASCII(48), tl.String()})
	return t, nil
}

// Fig4 reproduces Fig 4: a web-browsing stretch followed by FHD 60FPS
// streaming, reporting average power and the dominant residencies.
func Fig4() (Table, error) {
	e := newEnv()
	t := Table{
		ID: "fig4", Title: "Web browsing → FHD 60FPS streaming on 60 Hz",
		Header: []string{"Phase", "AvgPower", "C0", "C2", "C8"},
	}
	browse, err := workload.UIConventional(e.p, workload.WebBrowsing(), units.FHD, 60)
	if err != nil {
		return t, err
	}
	s := pipeline.Planar(units.FHD, 60, 60)
	stream, err := pipeline.Conventional(e.p, s)
	if err != nil {
		return t, err
	}
	for _, row := range []struct {
		name string
		tl   trace.Timeline
	}{{"web browsing", browse}, {"video streaming", stream}} {
		res := row.tl.Residency()
		t.Rows = append(t.Rows, []string{
			row.name,
			mw(e.avg(row.tl, s)),
			pct(res[soc.C0]), pct(res[soc.C2]), pct(res[soc.C8]),
		})
	}
	t.Notes = append(t.Notes, "paper: streaming phase ≈ 2831 mW mean with C8≈75%, C2≈15%, C0≈8% residency")
	return t, nil
}

// Table2 reproduces Table 2: per-C-state power and residency for baseline
// and BurstLink at FHD 30FPS, plus the average power.
func Table2() (Table, error) {
	e := newEnv()
	s := pipeline.Planar(units.FHD, 60, 30)
	load := power.LoadOf(e.p, s)
	t := Table{
		ID: "table2", Title: "FHD 30FPS on 60 Hz: per-state power and residency",
		Header: []string{"Scheme", "State", "Power", "Residency"},
	}
	base, err := pipeline.Conventional(e.p, s)
	if err != nil {
		return t, err
	}
	full, err := core.BurstLink(e.p, s)
	if err != nil {
		return t, err
	}
	emit := func(name string, tl trace.Timeline) {
		res := tl.Residency()
		states := make([]soc.PackageCState, 0, len(res))
		for st := range res {
			states = append(states, st)
		}
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				if states[j] < states[i] {
					states[i], states[j] = states[j], states[i]
				}
			}
		}
		for _, st := range states {
			// Representative phase power: state base plus the average
			// op/burst premium of its phases.
			var energy, dur float64
			for _, ph := range tl.Phases {
				if ph.State == st {
					energy += float64(e.m.PhasePower(ph, load)) * ph.Duration.Seconds()
					dur += ph.Duration.Seconds()
				}
			}
			t.Rows = append(t.Rows, []string{
				name, st.String(), mw(energy / dur), pct(res[st]),
			})
		}
		r := e.eval(tl, load)
		t.Rows = append(t.Rows, []string{name, "AvgP", mw(float64(r.Average)), "100%"})
	}
	emit("baseline", base)
	emit("burstlink", full)
	t.Notes = append(t.Notes,
		"paper baseline: C0 5940/9%, C2 5445/11%, C8 1285/80%, AvgP 2162 mW",
		"paper burstlink: C0 6090/2%, C7 1530/19%, C9 1090/79%, AvgP 1274 mW")
	return t, nil
}

// Fig6 reproduces Fig 6: C-state timelines under Frame Buffer Bypass.
func Fig6() (Table, error) {
	return techniqueTimelines("fig6", "Frame Buffer Bypass timelines (FHD on 60 Hz)", core.BypassOnly)
}

// Fig7 reproduces Fig 7: C-state timelines under full BurstLink.
func Fig7() (Table, error) {
	return techniqueTimelines("fig7", "Full BurstLink timelines (FHD on 60 Hz)", core.BurstLink)
}

func techniqueTimelines(id, title string, fn func(pipeline.Platform, pipeline.Scenario) (trace.Timeline, error)) (Table, error) {
	e := newEnv()
	t := Table{ID: id, Title: title, Header: []string{"Case", "Timeline (one period)", "Residency"}}
	for _, fps := range []units.FPS{30, 60} {
		tl, err := fn(e.p, pipeline.Planar(units.FHD, 60, fps))
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d FPS", fps), tl.ASCII(48), tl.String()})
	}
	return t, nil
}

// Fig9 reproduces Fig 9: total system energy reduction of Frame Bursting,
// Frame Buffer Bypassing, and full BurstLink for 30 FPS video at
// FHD/QHD/4K/5K.
func Fig9() (Table, error) { return planarReductions("fig9", 30) }

// Fig12 reproduces Fig 12: the same sweep at 60 FPS.
func Fig12() (Table, error) { return planarReductions("fig12", 60) }

func planarReductions(id string, fps units.FPS) (Table, error) {
	e := newEnv()
	t := Table{
		ID: id, Title: fmt.Sprintf("Energy reduction vs baseline, %d FPS on 60 Hz", fps),
		Header: []string{"Resolution", "Baseline", "Burst", "Bypass", "BurstLink"},
	}
	for _, res := range workload.PlanarResolutions() {
		s := pipeline.Planar(res, 60, fps)
		base, burst, bypass, full, err := e.schemes(s)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			res.Name(), mw(base),
			pct(1 - burst/base), pct(1 - bypass/base), pct(1 - full/base),
		})
	}
	if fps == 30 {
		t.Notes = append(t.Notes, "paper: FHD burst 23%, bypass 31%, full 37%; full rises to ~40.6% (4K) and ~42% (5K)")
	} else {
		t.Notes = append(t.Notes, "paper: full 46% (FHD) to 47% (5K)")
	}
	return t, nil
}

// Fig10 reproduces Fig 10: energy breakdown (DRAM/Display/Others) of
// baseline vs BurstLink at each resolution, normalized per-resolution to
// the baseline total.
func Fig10() (Table, error) {
	e := newEnv()
	t := Table{
		ID: "fig10", Title: "Energy breakdown, baseline vs BurstLink (30 FPS)",
		Header: []string{"Resolution", "Scheme", "DRAM", "Display", "Others", "DRAM reduction"},
	}
	for _, res := range workload.PlanarResolutions() {
		s := pipeline.Planar(res, 60, 30)
		load := power.LoadOf(e.p, s)
		base, err := pipeline.Conventional(e.p, s)
		if err != nil {
			return t, err
		}
		full, err := core.BurstLink(e.p, s)
		if err != nil {
			return t, err
		}
		bb := e.m.BreakdownOf(base, load)
		fb := e.m.BreakdownOf(full, load)
		total := float64(bb.Total())
		t.Rows = append(t.Rows, []string{
			res.Name(), "baseline",
			pct(float64(bb.DRAM) / total), pct(float64(bb.Display) / total), pct(float64(bb.Others) / total), "",
		})
		t.Rows = append(t.Rows, []string{
			"", "burstlink",
			pct(float64(fb.DRAM) / total), pct(float64(fb.Display) / total), pct(float64(fb.Others) / total),
			fmt.Sprintf("%.1fx", float64(bb.DRAM)/float64(fb.DRAM)),
		})
	}
	t.Notes = append(t.Notes, "paper: DRAM energy shrinks 3.8x (FHD) to 5.7x (5K)")
	return t, nil
}

// Fig13 reproduces Fig 13: BurstLink vs frame-buffer compression at
// 20/30/50% rates for 4K and 5K displays at 60 Hz.
func Fig13() (Table, error) {
	e := newEnv()
	t := Table{
		ID: "fig13", Title: "BurstLink vs frame-buffer compression (60 FPS, 60 Hz)",
		Header: []string{"Resolution", "FBC 20%", "FBC 30%", "FBC 50%", "BurstLink"},
	}
	for _, res := range []units.Resolution{units.R4K, units.R5K} {
		s := pipeline.Planar(res, 60, 60)
		base, err := pipeline.Conventional(e.p, s)
		if err != nil {
			return t, err
		}
		ref := e.avg(base, s)
		row := []string{res.Name()}
		for _, rate := range []float64{0.2, 0.3, 0.5} {
			tl, err := baseline.FBC(e.p, s, baseline.DefaultFBC(rate))
			if err != nil {
				return t, err
			}
			row = append(row, pct(1-e.avg(tl, s)/ref))
		}
		full, err := core.BurstLink(e.p, s)
		if err != nil {
			return t, err
		}
		row = append(row, pct(1-e.avg(full, s)/ref))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: FBC@50% saves ~9% at 4K; BurstLink saves ~40.6%")
	return t, nil
}
