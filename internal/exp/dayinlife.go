package exp

import (
	"fmt"

	"burstlink/internal/core"
	"burstlink/internal/pipeline"
	"burstlink/internal/power"
	"burstlink/internal/trace"
	"burstlink/internal/units"
	"burstlink/internal/workload"
)

// DayInLife composes a whole usage day from the paper's workload set —
// browsing, conferencing, streaming at two resolutions, office work — and
// prices it with and without BurstLink, translating the paper's
// per-workload percentages into the number every tablet reviewer quotes:
// hours of battery.
func DayInLife() (Table, error) {
	e := newEnv()
	type segment struct {
		name  string
		hours float64
		base  func() (trace.Timeline, power.Load, error)
		bl    func() (trace.Timeline, power.Load, error)
	}

	uiSeg := func(w workload.UIWorkload) (func() (trace.Timeline, power.Load, error), func() (trace.Timeline, power.Load, error)) {
		load := power.Load{Demand: 1, PanelRatio: 1}
		return func() (trace.Timeline, power.Load, error) {
				tl, err := workload.UIConventional(e.p, w, units.FHD, 60)
				return tl, load, err
			}, func() (trace.Timeline, power.Load, error) {
				tl, err := workload.UIBurst(e.p, w, units.FHD, 60)
				return tl, load, err
			}
	}
	videoSeg := func(s pipeline.Scenario) (func() (trace.Timeline, power.Load, error), func() (trace.Timeline, power.Load, error)) {
		load := power.LoadOf(e.p, s)
		return func() (trace.Timeline, power.Load, error) {
				tl, err := pipeline.Conventional(e.p, s)
				return tl, load, err
			}, func() (trace.Timeline, power.Load, error) {
				tl, err := core.BurstLink(e.p, s)
				return tl, load, err
			}
	}

	browseBase, browseBL := uiSeg(workload.WebBrowsing())
	confBase, confBL := uiSeg(workload.VideoConferencing())
	officeBase, officeBL := uiSeg(workload.MobileMark())
	fhdBase, fhdBL := videoSeg(pipeline.Planar(units.FHD, 60, 30))
	k4Base, k4BL := videoSeg(pipeline.Planar(units.R4K, 60, 60))

	segments := []segment{
		{"web browsing", 3, browseBase, browseBL},
		{"video conferencing", 1, confBase, confBL},
		{"office (MobileMark)", 2, officeBase, officeBL},
		{"FHD 30FPS streaming", 2, fhdBase, fhdBL},
		{"4K 60FPS streaming", 1, k4Base, k4BL},
	}

	t := Table{
		ID: "dayinlife", Title: "A 9-hour usage day, baseline vs BurstLink",
		Header: []string{"Segment", "Hours", "Baseline", "BurstLink", "Saving"},
	}
	var eBase, eBL float64 // mWh
	var totalHours float64
	for _, seg := range segments {
		tb, lb, err := seg.base()
		if err != nil {
			return t, err
		}
		tl, ll, err := seg.bl()
		if err != nil {
			return t, err
		}
		pb := float64(e.eval(tb, lb).Average)
		pl := float64(e.eval(tl, ll).Average)
		eBase += pb * seg.hours
		eBL += pl * seg.hours
		totalHours += seg.hours
		t.Rows = append(t.Rows, []string{
			seg.name, fmt.Sprintf("%.0f", seg.hours), mw(pb), mw(pl), pct(1 - pl/pb),
		})
	}
	bat := workload.SurfaceProBattery()
	avgBase := units.Power(eBase / totalHours)
	avgBL := units.Power(eBL / totalHours)
	t.Rows = append(t.Rows, []string{
		"whole day", fmt.Sprintf("%.0f", totalHours), mw(float64(avgBase)), mw(float64(avgBL)), pct(1 - float64(avgBL)/float64(avgBase)),
	})
	t.Notes = append(t.Notes, fmt.Sprintf(
		"battery at this mix: %s baseline vs %s with BurstLink",
		workload.LifeString(bat.Life(avgBase)), workload.LifeString(bat.Life(avgBL))))
	return t, nil
}
