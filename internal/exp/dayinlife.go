package exp

import (
	"fmt"

	"burstlink/internal/core"
	"burstlink/internal/pipeline"
	"burstlink/internal/power"
	"burstlink/internal/sink"
	"burstlink/internal/trace"
	"burstlink/internal/units"
	"burstlink/internal/workload"
)

// DayInLife composes a whole usage day from the paper's workload set —
// browsing, conferencing, streaming at two resolutions, office work — and
// prices it with and without BurstLink, translating the paper's
// per-workload percentages into the number every tablet reviewer quotes:
// hours of battery.
func DayInLife() (Table, error) {
	e := newEnv()
	type segment struct {
		name  string
		hours float64
		base  func() (trace.Timeline, power.Load, error)
		bl    func() (trace.Timeline, power.Load, error)
	}

	uiSeg := func(w workload.UIWorkload) (func() (trace.Timeline, power.Load, error), func() (trace.Timeline, power.Load, error)) {
		load := power.Load{Demand: 1, PanelRatio: 1}
		return func() (trace.Timeline, power.Load, error) {
				tl, err := workload.UIConventional(e.p, w, units.FHD, 60)
				return tl, load, err
			}, func() (trace.Timeline, power.Load, error) {
				tl, err := workload.UIBurst(e.p, w, units.FHD, 60)
				return tl, load, err
			}
	}
	videoSeg := func(s pipeline.Scenario) (func() (trace.Timeline, power.Load, error), func() (trace.Timeline, power.Load, error)) {
		load := power.LoadOf(e.p, s)
		return func() (trace.Timeline, power.Load, error) {
				tl, err := pipeline.Conventional(e.p, s)
				return tl, load, err
			}, func() (trace.Timeline, power.Load, error) {
				tl, err := core.BurstLink(e.p, s)
				return tl, load, err
			}
	}

	browseBase, browseBL := uiSeg(workload.WebBrowsing())
	confBase, confBL := uiSeg(workload.VideoConferencing())
	officeBase, officeBL := uiSeg(workload.MobileMark())
	fhdBase, fhdBL := videoSeg(pipeline.Planar(units.FHD, 60, 30))
	k4Base, k4BL := videoSeg(pipeline.Planar(units.R4K, 60, 60))

	segments := []segment{
		{"web browsing", 3, browseBase, browseBL},
		{"video conferencing", 1, confBase, confBL},
		{"office (MobileMark)", 2, officeBase, officeBL},
		{"FHD 30FPS streaming", 2, fhdBase, fhdBL},
		{"4K 60FPS streaming", 1, k4Base, k4BL},
	}

	// The driver streams typed rows through the sink layer; the TableSink
	// formats them into the printable table. A caller wanting aggregates
	// as well would tee the same stream into a sink.Agg.
	t := Table{ID: "dayinlife", Title: "A 9-hour usage day, baseline vs BurstLink"}
	snk := &TableSink{T: &t}
	if err := snk.Begin(sink.Schema{Name: t.ID, Cols: []sink.Column{
		{Name: "Segment", Kind: sink.String},
		{Name: "Hours", Kind: sink.Float, Unit: UnitHours},
		{Name: "Baseline", Kind: sink.Float, Unit: UnitMW},
		{Name: "BurstLink", Kind: sink.Float, Unit: UnitMW},
		{Name: "Saving", Kind: sink.Float, Unit: UnitFrac},
	}}); err != nil {
		return t, err
	}
	var eBase, eBL float64 // mWh
	var totalHours float64
	for _, seg := range segments {
		tb, lb, err := seg.base()
		if err != nil {
			return t, err
		}
		tl, ll, err := seg.bl()
		if err != nil {
			return t, err
		}
		pb := float64(e.eval(tb, lb).Average)
		pl := float64(e.eval(tl, ll).Average)
		eBase += pb * seg.hours
		eBL += pl * seg.hours
		totalHours += seg.hours
		if err := snk.Append([]sink.Value{
			sink.Str(seg.name), sink.FloatV(seg.hours), sink.FloatV(pb), sink.FloatV(pl), sink.FloatV(1 - pl/pb),
		}); err != nil {
			return t, err
		}
	}
	bat := workload.SurfaceProBattery()
	avgBase := units.Power(eBase / totalHours)
	avgBL := units.Power(eBL / totalHours)
	if err := snk.Append([]sink.Value{
		sink.Str("whole day"), sink.FloatV(totalHours), sink.FloatV(float64(avgBase)), sink.FloatV(float64(avgBL)), sink.FloatV(1 - float64(avgBL)/float64(avgBase)),
	}); err != nil {
		return t, err
	}
	if err := snk.Flush(); err != nil {
		return t, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"battery at this mix: %s baseline vs %s with BurstLink",
		workload.LifeString(bat.Life(avgBase)), workload.LifeString(bat.Life(avgBL))))
	return t, nil
}
