package capture

import (
	"testing"

	"burstlink/internal/units"
)

func TestConventionalTrafficAccounting(t *testing.T) {
	cfg := DefaultConfig()
	res, err := RunConventional(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw := cfg.Res.FrameSize(cfg.BPP)
	enc := units.ByteSize(float64(cfg.Res.Pixels()) * cfg.EncodedBitsPerPixel / 8)
	// Per frame: 2 raw writes (sensor, ISP) + 1 encoded write; 2 raw
	// reads (ISP, encoder).
	wantW := units.ByteSize(cfg.Frames) * (2*raw + enc)
	wantR := units.ByteSize(cfg.Frames) * 2 * raw
	if res.DRAMWrite != wantW || res.DRAMRead != wantR {
		t.Fatalf("traffic = %v/%v, want %v/%v", res.DRAMRead, res.DRAMWrite, wantR, wantW)
	}
}

func TestRemoteBufferSlashesDRAMTraffic(t *testing.T) {
	cfg := DefaultConfig()
	conv, err := RunConventional(cfg)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := RunRemoteBuffer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// §4.5's claim: the remote buffer removes all raw-frame DRAM
	// round-trips. At 0.45 bits/pixel encoded vs 24-bit raw, that is a
	// >50x traffic cut.
	if remote.TotalDRAM()*50 > conv.TotalDRAM() {
		t.Fatalf("remote DRAM %v not ≪ conventional %v", remote.TotalDRAM(), conv.TotalDRAM())
	}
	if remote.DRAMRead != 0 {
		t.Fatalf("remote path should read nothing from DRAM, got %v", remote.DRAMRead)
	}
	// The raw frames moved peer-to-peer instead: two hops per frame.
	raw := cfg.Res.FrameSize(cfg.BPP)
	if want := units.ByteSize(cfg.Frames) * 2 * raw; remote.P2PBytes != want {
		t.Fatalf("P2P bytes = %v, want %v", remote.P2PBytes, want)
	}
}

func TestCaptureValidation(t *testing.T) {
	if _, err := RunConventional(Config{}); err == nil {
		t.Fatal("empty config should fail")
	}
	if _, err := RunRemoteBuffer(Config{Res: units.FHD}); err == nil {
		t.Fatal("incomplete config should fail")
	}
}
