// Package capture generalizes BurstLink's takeaway to the data-*producer*
// side (§4.5): "BurstLink uses small remote memory near the data consumer
// (e.g., a display panel) or the data producer (e.g., a camera sensor) to
// significantly reduce the number of costly main memory accesses in
// frame-based applications."
//
// It models the video-capture (recording) path: camera sensor → ISP →
// encoder. Conventionally every stage round-trips DRAM (sensor DMA in,
// ISP reads/writes, encoder reads). With a sensor-side remote buffer the
// raw frame flows sensor → ISP → encoder over the fabric and only the
// (small) encoded output touches DRAM.
package capture

import (
	"fmt"
	"time"

	"burstlink/internal/dram"
	"burstlink/internal/interconnect"
	"burstlink/internal/units"
)

// Config describes a capture session.
type Config struct {
	Res    units.Resolution
	BPP    int // raw sensor depth per pixel (bits)
	FPS    units.FPS
	Frames int
	// EncodedBitsPerPixel sizes the encoder output.
	EncodedBitsPerPixel float64
}

// DefaultConfig returns a 4K30 recording session.
func DefaultConfig() Config {
	return Config{Res: units.R4K, BPP: 24, FPS: 30, Frames: 30, EncodedBitsPerPixel: 0.45}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Res.Pixels() <= 0 || c.BPP <= 0 || c.FPS <= 0 || c.Frames <= 0 {
		return fmt.Errorf("capture: incomplete config %+v", c)
	}
	return nil
}

// rawFrame returns the raw sensor frame size.
func (c Config) rawFrame() units.ByteSize { return c.Res.FrameSize(c.BPP) }

// encodedFrame returns the encoder output size per frame.
func (c Config) encodedFrame() units.ByteSize {
	return units.ByteSize(float64(c.Res.Pixels()) * c.EncodedBitsPerPixel / 8)
}

// Result reports the traffic of a capture run.
type Result struct {
	DRAMRead, DRAMWrite units.ByteSize
	P2PBytes            units.ByteSize
}

// TotalDRAM returns the summed DRAM traffic.
func (r Result) TotalDRAM() units.ByteSize { return r.DRAMRead + r.DRAMWrite }

// RunConventional accounts the conventional capture dataflow: per frame,
// the sensor DMAs the raw frame into DRAM, the ISP reads and writes it
// back (processed), and the encoder reads it again and writes the encoded
// output.
func RunConventional(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	mem := dram.NewDevice(dram.DefaultLPDDR3())
	fabric := interconnect.DefaultFabric()
	sensorDMA := interconnect.NewDMAEngine("sensor", fabric, mem)
	ispDMA := interconnect.NewDMAEngine("isp", fabric, mem)
	encDMA := interconnect.NewDMAEngine("encoder", fabric, mem)

	raw, enc := cfg.rawFrame(), cfg.encodedFrame()
	for f := 0; f < cfg.Frames; f++ {
		sensorDMA.WriteMem(raw) // sensor capture into DRAM
		ispDMA.ReadMem(raw)     // ISP input
		ispDMA.WriteMem(raw)    // ISP processed output
		encDMA.ReadMem(raw)     // encoder input
		encDMA.WriteMem(enc)    // encoded bitstream
	}
	r, w := mem.Traffic()
	return Result{DRAMRead: r, DRAMWrite: w}, nil
}

// RunRemoteBuffer accounts the §4.5 dataflow: a small remote buffer at
// the sensor lets the raw frame flow sensor → ISP → encoder peer-to-peer;
// only the encoded output is written to DRAM.
func RunRemoteBuffer(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	mem := dram.NewDevice(dram.DefaultLPDDR3())
	fabric := interconnect.DefaultFabric()
	sensorP2P := interconnect.NewP2PEngine("sensor", fabric)
	ispP2P := interconnect.NewP2PEngine("isp", fabric)
	encDMA := interconnect.NewDMAEngine("encoder", fabric, mem)

	stage := &chainSink{}
	raw, enc := cfg.rawFrame(), cfg.encodedFrame()
	for f := 0; f < cfg.Frames; f++ {
		sensorP2P.Send(stage, raw) // sensor → ISP
		ispP2P.Send(stage, raw)    // ISP → encoder
		encDMA.WriteMem(enc)       // encoded bitstream only
	}
	r, w := mem.Traffic()
	return Result{DRAMRead: r, DRAMWrite: w, P2PBytes: sensorP2P.Moved() + ispP2P.Moved()}, nil
}

// chainSink absorbs P2P transfers instantly (fabric-bound): it stands in
// for the downstream IP (ISP or encoder) consuming the stream in place.
type chainSink struct{ got units.ByteSize }

func (c *chainSink) Name() string { return "chain" }
func (c *chainSink) Accept(n units.ByteSize) time.Duration {
	c.got += n
	return 0
}
