package edp

import (
	"testing"

	"burstlink/internal/units"
)

func TestPanelCapabilityProfiles(t *testing.T) {
	conv := ConventionalPanelCaps()
	if !conv.PSR || conv.PSR2 || conv.DRFB {
		t.Fatalf("conventional caps = %+v", conv)
	}
	if conv.SupportsBursting() || conv.SupportsWindowed() {
		t.Fatal("conventional panel should not support BurstLink modes")
	}
	bl := BurstLinkPanelCaps()
	if !bl.SupportsBursting() || !bl.SupportsWindowed() {
		t.Fatalf("burstlink caps = %+v", bl)
	}
	if bl.MaxLinkRate != EDP14().MaxBandwidth() {
		t.Fatal("burstlink panel should advertise eDP 1.4 rates")
	}
}

func TestNegotiatedBurstRate(t *testing.T) {
	bl := BurstLinkPanelCaps()
	if got := bl.NegotiatedBurstRate(EDP14()); got != EDP14().MaxBandwidth() {
		t.Fatalf("matched ends = %v", got)
	}
	// Slower panel limits.
	bl.MaxLinkRate = 10 * units.Gbps
	if got := bl.NegotiatedBurstRate(EDP14()); got != 10*units.Gbps {
		t.Fatalf("panel-limited = %v", got)
	}
	// No DRFB: no bursting at any rate.
	if ConventionalPanelCaps().NegotiatedBurstRate(EDP14()) != 0 {
		t.Fatal("no DRFB should negotiate zero")
	}
}

func TestLinkAccessors(t *testing.T) {
	l := NewLink(EDP14(), 3*units.Gbps)
	if l.Config().Lanes != 4 {
		t.Fatal("config accessor wrong")
	}
	if l.Mode() != PixelPaced || l.State() != LinkOn {
		t.Fatal("initial mode/state wrong")
	}
	l.SetPixelRate(6 * units.Gbps)
	if l.EffectiveRate() != 6*units.Gbps {
		t.Fatalf("pixel rate update not applied: %v", l.EffectiveRate())
	}
}
