package edp

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"burstlink/internal/units"
)

func TestEDP14MaxBandwidth(t *testing.T) {
	// §3: "the newest eDP interface supports a maximum bandwidth of
	// 25.92 Gbps".
	got := EDP14().MaxBandwidth()
	if math.Abs(float64(got-25.92*units.Gbps)) > 1e6 {
		t.Fatalf("eDP 1.4 max = %v, want 25.92 Gbps", got)
	}
}

func TestEDP13MaxBandwidth(t *testing.T) {
	got := EDP13().MaxBandwidth()
	if math.Abs(float64(got-17.28*units.Gbps)) > 1e6 {
		t.Fatalf("eDP 1.3 max = %v, want 17.28 Gbps", got)
	}
}

func TestBurstTransfer4KFrame(t *testing.T) {
	// §3: a full 4K frame takes ~7.2-7.7 ms at maximum bandwidth...
	l := NewLink(EDP14(), units.RefreshRate(60).PixelRate(units.R4K, 24))
	l.SetMode(Burst)
	d := l.Transfer(units.R4K.FrameSize(24))
	if d < 7*time.Millisecond || d > 8*time.Millisecond {
		t.Fatalf("burst 4K frame = %v, want ~7.2-7.7ms", d)
	}
}

func TestPixelPacedTransferFillsWindow(t *testing.T) {
	// ...whereas conventional pacing spreads it over the whole ~16.7 ms
	// frame window (§2.5).
	l := NewLink(EDP14(), units.RefreshRate(60).PixelRate(units.R4K, 24))
	d := l.Transfer(units.R4K.FrameSize(24))
	window := units.RefreshRate(60).Window()
	if math.Abs(d.Seconds()-window.Seconds()) > 1e-4 {
		t.Fatalf("pixel-paced 4K frame = %v, want ~%v", d, window)
	}
}

func TestBurstAlwaysAtLeastAsFast(t *testing.T) {
	f := func(mpix uint8, hz uint8) bool {
		res := units.Resolution{Width: int(mpix%64+1) * 100, Height: 1000}
		rate := units.RefreshRate(hz%240 + 1)
		l := NewLink(EDP14(), rate.PixelRate(res, 24))
		paced := l.EffectiveRate()
		l.SetMode(Burst)
		return l.EffectiveRate() >= paced
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPixelRateCappedAtLinkMax(t *testing.T) {
	// A hypothetical 8K@120 pixel stream exceeds the link; the effective
	// rate must cap at the physical maximum.
	huge := units.RefreshRate(120).PixelRate(units.Resolution{Width: 7680, Height: 4320}, 24)
	l := NewLink(EDP14(), huge)
	if got := l.EffectiveRate(); got != EDP14().MaxBandwidth() {
		t.Fatalf("effective = %v, want capped at %v", got, EDP14().MaxBandwidth())
	}
}

func TestTransferAccountsBytes(t *testing.T) {
	l := NewLink(EDP14(), units.Gbps)
	l.Transfer(units.MB)
	l.Transfer(2 * units.MB)
	if l.Moved() != 3*units.MB {
		t.Fatalf("moved = %v", l.Moved())
	}
}

func TestTransferOnOffLinkPanics(t *testing.T) {
	l := NewLink(EDP14(), units.Gbps)
	l.SetState(LinkOff)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Transfer(units.KB)
}

func TestSidebandQueue(t *testing.T) {
	l := NewLink(EDP14(), units.Gbps)
	l.SendSideband(SidebandMsg{Kind: PSREnter})
	l.SendSideband(SidebandMsg{Kind: PSR2Update, Region: Rect{X: 10, Y: 20, W: 640, H: 360}})
	msgs := l.DrainSideband()
	if len(msgs) != 2 || msgs[0].Kind != PSREnter || msgs[1].Region.Pixels() != 640*360 {
		t.Fatalf("sideband = %+v", msgs)
	}
	if len(l.DrainSideband()) != 0 {
		t.Fatal("drain did not clear queue")
	}
}

func TestSidebandOnPoweredDownLinkPanics(t *testing.T) {
	l := NewLink(EDP14(), units.Gbps)
	l.SetState(LinkOff)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.SendSideband(SidebandMsg{Kind: PSRExit})
}

func TestSidebandAllowedInLowPower(t *testing.T) {
	// PSR exit is signaled while the main link is in fast-wake standby.
	l := NewLink(EDP14(), units.Gbps)
	l.SetState(LinkLowPower)
	l.SendSideband(SidebandMsg{Kind: PSRExit})
	if got := l.DrainSideband(); len(got) != 1 {
		t.Fatalf("sideband = %+v", got)
	}
}

func TestRectGeometry(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 100, H: 100}
	b := Rect{X: 50, Y: 50, W: 100, H: 100}
	c := Rect{X: 200, Y: 200, W: 10, H: 10}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlapping rects should intersect")
	}
	if a.Intersects(c) {
		t.Fatal("disjoint rects should not intersect")
	}
	if (Rect{W: 0, H: 10}).Empty() != true || a.Empty() {
		t.Fatal("Empty wrong")
	}
}

func TestModeAndStateStrings(t *testing.T) {
	if PixelPaced.String() != "pixel-paced" || Burst.String() != "burst" {
		t.Fatal("mode names wrong")
	}
	if LinkOn.String() != "on" || LinkOff.String() != "off" {
		t.Fatal("state names wrong")
	}
	if PowerState(9).String() != "PowerState(9)" || SidebandKind(9).String() != "SidebandKind(9)" {
		t.Fatal("out-of-range names wrong")
	}
	if FrameReady.String() != "FRAME_READY" {
		t.Fatal("sideband names wrong")
	}
}
