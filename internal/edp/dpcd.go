package edp

import "burstlink/internal/units"

// Capabilities is the panel's DPCD-style capability set, which the host
// reads over the AUX channel at link bring-up. BurstLink's driver checks
// these before enabling its mechanisms: Frame Bursting needs a DRFB sink
// (§4.1) and windowed mode needs PSR2 selective updates (eDP 1.4, §2.3).
type Capabilities struct {
	// PSR and PSR2 report the self-refresh protocol generations.
	PSR, PSR2 bool
	// DRFB reports a double remote frame buffer behind the receiver.
	DRFB bool
	// MaxLinkRate is the panel-supported payload ceiling; the host
	// clamps its burst bandwidth to min(host, panel).
	MaxLinkRate units.DataRate
}

// ConventionalPanelCaps returns a stock PSR panel (eDP 1.3 class).
func ConventionalPanelCaps() Capabilities {
	return Capabilities{PSR: true, MaxLinkRate: EDP13().MaxBandwidth()}
}

// BurstLinkPanelCaps returns a BurstLink-enabled panel: PSR2 + DRFB on an
// eDP 1.4 link.
func BurstLinkPanelCaps() Capabilities {
	return Capabilities{PSR: true, PSR2: true, DRFB: true, MaxLinkRate: EDP14().MaxBandwidth()}
}

// SupportsBursting reports whether Frame Bursting can be enabled against
// this panel.
func (c Capabilities) SupportsBursting() bool { return c.DRFB }

// SupportsWindowed reports whether the §4.1 windowed-video mode can be
// enabled (needs PSR2 selective updates).
func (c Capabilities) SupportsWindowed() bool { return c.PSR2 && c.DRFB }

// NegotiatedBurstRate returns the burst bandwidth a host with the given
// link config can use against this panel: the slower of the two ends, and
// zero if the panel cannot sink bursts at all.
func (c Capabilities) NegotiatedBurstRate(host LinkConfig) units.DataRate {
	if !c.SupportsBursting() {
		return 0
	}
	hostMax := host.MaxBandwidth()
	if c.MaxLinkRate < hostMax {
		return c.MaxLinkRate
	}
	return hostMax
}
