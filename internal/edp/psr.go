package edp

import "fmt"

// SidebandKind identifies a PSR protocol message carried on the AUX
// channel (§2.3: "a protocol in which the DC notifies the display panel of
// an unchanged image").
type SidebandKind int

// PSR sideband message kinds.
const (
	// PSREnter tells the T-con the image is static: self-refresh from the
	// RFB and let the host power down the link.
	PSREnter SidebandKind = iota
	// PSRExit resumes host-driven refresh.
	PSRExit
	// PSR2Update precedes a selective update of a dirty rectangle while
	// in PSR (eDP 1.4 PSR2, §2.3).
	PSR2Update
	// FrameReady announces a complete frame has landed in the (D)RFB and
	// may be flipped to scan-out (BurstLink DRFB protocol, §4.2).
	FrameReady
)

var sidebandNames = [...]string{"PSR_ENTER", "PSR_EXIT", "PSR2_UPDATE", "FRAME_READY"}

// String names the message kind.
func (k SidebandKind) String() string {
	if k < 0 || int(k) >= len(sidebandNames) {
		return fmt.Sprintf("SidebandKind(%d)", int(k))
	}
	return sidebandNames[k]
}

// Rect is a dirty rectangle in panel coordinates for PSR2 selective
// updates.
type Rect struct {
	X, Y, W, H int
}

// Pixels returns the rectangle's pixel count.
func (r Rect) Pixels() int { return r.W * r.H }

// Empty reports whether the rectangle covers no pixels.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Intersects reports whether two rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.X < o.X+o.W && o.X < r.X+r.W && r.Y < o.Y+o.H && o.Y < r.Y+r.H
}

// SidebandMsg is one AUX-channel protocol message.
type SidebandMsg struct {
	Kind SidebandKind
	// Region is the dirty rectangle for PSR2Update; zero otherwise.
	Region Rect
	// Slot selects the DRFB bank for FrameReady in BurstLink panels.
	Slot int
}

// SendSideband queues a sideband message on the link. AUX messages are
// tiny and effectively instantaneous at the timescales modeled, so no
// duration is returned. Panels drain the queue with DrainSideband.
func (l *Link) SendSideband(m SidebandMsg) {
	if l.state == LinkOff {
		panic("edp: sideband on powered-down link")
	}
	l.sideband = append(l.sideband, m)
}

// DrainSideband returns and clears all queued sideband messages in order.
func (l *Link) DrainSideband() []SidebandMsg {
	out := l.sideband
	l.sideband = nil
	return out
}
