// Package edp models the embedded-DisplayPort link between the SoC's
// display controller and the panel's timing controller (§2.3, §3
// Observation 2). It captures the two facts BurstLink exploits: the link's
// maximum payload bandwidth (25.92 Gbps for eDP 1.4: four HBR3 lanes at
// 8.1 Gbps with 8b/10b coding) is far above the pixel rate conventional
// systems pace it at, and the link supports a PSR/PSR2 sideband protocol
// for self-refresh and selective updates.
package edp

import (
	"fmt"
	"time"

	"burstlink/internal/units"
)

// LinkConfig describes the physical link.
type LinkConfig struct {
	Lanes       int
	LaneRate    units.DataRate // raw per-lane line rate
	CodingRatio float64        // payload fraction after line coding (0.8 for 8b/10b)
}

// EDP14 returns the eDP 1.4 configuration: 4 lanes × HBR3 8.1 Gbps ×
// 8b/10b = 25.92 Gbps payload, the figure the paper quotes (§3).
func EDP14() LinkConfig {
	return LinkConfig{Lanes: 4, LaneRate: 8.1 * units.Gbps, CodingRatio: 0.8}
}

// EDP13 returns the older eDP 1.3 configuration (4 × HBR2 5.4 Gbps),
// useful for the burst-bandwidth ablation.
func EDP13() LinkConfig {
	return LinkConfig{Lanes: 4, LaneRate: 5.4 * units.Gbps, CodingRatio: 0.8}
}

// MaxBandwidth returns the link's maximum payload bandwidth.
func (c LinkConfig) MaxBandwidth() units.DataRate {
	return units.DataRate(float64(c.LaneRate) * float64(c.Lanes) * c.CodingRatio)
}

// Mode is the link pacing mode.
type Mode int

// Link pacing modes.
const (
	// PixelPaced throttles the link to the panel's pixel-update rate, the
	// conventional coupling of DC, link, and pixel formatter (§3 Obs. 2).
	PixelPaced Mode = iota
	// Burst runs the link at its maximum payload bandwidth, BurstLink's
	// Frame Bursting mode (§4.2).
	Burst
)

// String names the mode.
func (m Mode) String() string {
	if m == Burst {
		return "burst"
	}
	return "pixel-paced"
}

// PowerState is the link electrical state on both ends.
type PowerState int

// Link power states.
const (
	LinkOff      PowerState = iota // lanes powered down (deep package states)
	LinkLowPower                   // fast-wake standby (ALPM)
	LinkOn                         // transmitting
)

var linkStateNames = [...]string{"off", "low-power", "on"}

// String names the link power state.
func (s PowerState) String() string {
	if s < 0 || int(s) >= len(linkStateNames) {
		return fmt.Sprintf("PowerState(%d)", int(s))
	}
	return linkStateNames[s]
}

// Link is an eDP main-link instance with traffic accounting.
type Link struct {
	cfg   LinkConfig
	mode  Mode
	rate  units.DataRate // effective rate in PixelPaced mode
	state PowerState

	moved    units.ByteSize
	sideband []SidebandMsg
}

// NewLink builds a link in PixelPaced mode at the given pixel rate.
func NewLink(cfg LinkConfig, pixelRate units.DataRate) *Link {
	return &Link{cfg: cfg, mode: PixelPaced, rate: pixelRate, state: LinkOn}
}

// Config returns the physical configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Mode returns the current pacing mode.
func (l *Link) Mode() Mode { return l.mode }

// State returns the electrical power state.
func (l *Link) State() PowerState { return l.state }

// SetState changes the electrical power state.
func (l *Link) SetState(s PowerState) { l.state = s }

// SetMode switches pacing mode. Entering Burst requires the PMU firmware
// grant (§4.4 change 3); callers model that by only switching when granted.
func (l *Link) SetMode(m Mode) { l.mode = m }

// SetPixelRate updates the PixelPaced rate (resolution or refresh change).
func (l *Link) SetPixelRate(r units.DataRate) { l.rate = r }

// EffectiveRate returns the payload rate the link currently moves data at.
// In PixelPaced mode the pixel rate is additionally capped by the link's
// physical maximum.
func (l *Link) EffectiveRate() units.DataRate {
	max := l.cfg.MaxBandwidth()
	if l.mode == Burst {
		return max
	}
	if l.rate > max {
		return max
	}
	return l.rate
}

// Transfer moves n bytes over the main link and returns the duration.
// Transferring on a link that is not on panics — a scheduling bug.
func (l *Link) Transfer(n units.ByteSize) time.Duration {
	if l.state != LinkOn {
		panic("edp: transfer on link in state " + l.state.String())
	}
	l.moved += n
	return l.EffectiveRate().TimeFor(n)
}

// Moved returns total payload bytes transferred.
func (l *Link) Moved() units.ByteSize { return l.moved }
