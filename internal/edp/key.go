package edp

import "burstlink/internal/memo"

// AppendKey renders the link configuration into a canonical segment key.
func (c LinkConfig) AppendKey(w *memo.KeyWriter) {
	w.Int("lanes", int64(c.Lanes))
	w.Float("lanerate", float64(c.LaneRate))
	w.Float("coding", c.CodingRatio)
}
