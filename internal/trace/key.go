package trace

import "burstlink/internal/memo"

// AppendKey renders the phase into a canonical segment key. Every field
// participates: a phase attribute that changed the power model's answer
// but not the key would silently serve stale cached segments
// (memokeycheck pins the exhaustiveness).
func (p Phase) AppendKey(w *memo.KeyWriter) {
	w.Int("state", int64(p.State))
	w.Duration("dur", p.Duration)
	w.Uint("read", uint64(p.DRAMRead))
	w.Uint("write", uint64(p.DRAMWrite))
	w.Bool("burst", p.EDPBurst)
	w.Bool("gpu", p.GPUActive)
	w.Float("boost", p.Boost)
	w.String("label", p.Label)
}

// AppendKey renders the timeline content into a canonical segment key:
// the phase count then each phase in order. Keying power integration by
// timeline *content* (rather than by the scheme that generated it) lets
// any two generators that emit the same period share the cached
// evaluation.
func (t Timeline) AppendKey(w *memo.KeyWriter) {
	w.Int("phases", int64(len(t.Phases)))
	for _, p := range t.Phases {
		w.Sub("phase", p)
	}
}
