package trace

import (
	"encoding/json"
	"testing"
	"time"

	"burstlink/internal/soc"
	"burstlink/internal/units"
)

func TestChromeTraceExport(t *testing.T) {
	var tl Timeline
	tl.AddState(soc.C0, 3*time.Millisecond, "decode")
	tl.Add(Phase{State: soc.C2, Duration: 4 * time.Millisecond, DRAMRead: units.MB, Label: "fetch"})
	tl.Add(Phase{State: soc.C7, Duration: 2 * time.Millisecond, EDPBurst: true})
	tl.AddState(soc.C9, 7*time.Millisecond, "idle")

	b, err := tl.ChromeTrace("fhd30")
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.TraceEvents) != 4 {
		t.Fatalf("events = %d", len(decoded.TraceEvents))
	}
	// Events tile the timeline with no gaps.
	var at float64
	for i, e := range decoded.TraceEvents {
		if e.TS != at {
			t.Fatalf("event %d at %v, want %v", i, e.TS, at)
		}
		at += e.Dur
	}
	if at != 16000 {
		t.Fatalf("total = %vµs, want 16000", at)
	}
	if decoded.TraceEvents[1].Args["dram"] == "" {
		t.Fatal("DRAM annotation missing")
	}
	if decoded.TraceEvents[2].Args["edp"] != "burst" {
		t.Fatal("burst annotation missing")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var tl Timeline
	b, err := tl.ChromeTrace("empty")
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
}
