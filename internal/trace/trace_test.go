package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"burstlink/internal/sim"
	"burstlink/internal/soc"
	"burstlink/internal/units"
)

// table2Baseline builds the baseline FHD 30FPS timeline of Table 2:
// 9% C0, 11% C2, 80% C8 over a two-window (33.33 ms) period.
func table2Baseline() Timeline {
	var t Timeline
	period := 2 * units.RefreshRate(60).Window()
	t.AddState(soc.C0, period*9/100, "decode")
	t.AddState(soc.C2, period*11/100, "dc fetch")
	t.AddState(soc.C8, period*80/100, "idle")
	return t
}

func TestResidencyMatchesConstruction(t *testing.T) {
	tl := table2Baseline()
	res := tl.Residency()
	want := map[soc.PackageCState]float64{soc.C0: 0.09, soc.C2: 0.11, soc.C8: 0.80}
	for s, w := range want {
		if math.Abs(res[s]-w) > 1e-6 {
			t.Errorf("residency[%v] = %.4f, want %.4f", s, res[s], w)
		}
	}
}

func TestResidencySumsToOne(t *testing.T) {
	f := func(durs [5]uint16) bool {
		var tl Timeline
		states := soc.All()
		any := false
		for i, d := range durs {
			if d == 0 {
				continue
			}
			any = true
			tl.AddState(states[i%len(states)], time.Duration(d)*time.Microsecond, "")
		}
		if !any {
			return len(tl.Residency()) == 0
		}
		sum := 0.0
		for _, r := range tl.Residency() {
			sum += r
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroDurationPhasesDropped(t *testing.T) {
	var tl Timeline
	tl.AddState(soc.C0, 0, "nothing")
	tl.Add(Phase{State: soc.C2, Duration: -time.Millisecond})
	if len(tl.Phases) != 0 {
		t.Fatalf("zero/negative phases kept: %v", tl.Phases)
	}
}

func TestCompactMergesAdjacent(t *testing.T) {
	var tl Timeline
	tl.Add(Phase{State: soc.C2, Duration: time.Millisecond, DRAMRead: units.MB})
	tl.Add(Phase{State: soc.C2, Duration: time.Millisecond, DRAMRead: 2 * units.MB})
	tl.Add(Phase{State: soc.C8, Duration: time.Millisecond})
	tl.Add(Phase{State: soc.C2, Duration: time.Millisecond, Label: "x"})
	tl.Compact()
	if len(tl.Phases) != 3 {
		t.Fatalf("compacted to %d phases, want 3", len(tl.Phases))
	}
	if tl.Phases[0].Duration != 2*time.Millisecond || tl.Phases[0].DRAMRead != 3*units.MB {
		t.Fatalf("merged phase wrong: %+v", tl.Phases[0])
	}
}

func TestCompactPreservesTotals(t *testing.T) {
	f := func(seed uint32, n uint8) bool {
		var tl Timeline
		s := seed
		for i := 0; i < int(n%40)+1; i++ {
			s = s*1664525 + 1013904223
			tl.Add(Phase{
				State:    soc.PackageCState(s % 9),
				Duration: time.Duration(s%1000+1) * time.Microsecond,
				DRAMRead: units.ByteSize(s % 4096),
			})
		}
		total, read := tl.Total(), func() units.ByteSize { r, _ := tl.DRAMTraffic(); return r }()
		tl.Compact()
		r2, _ := tl.DRAMTraffic()
		return tl.Total() == total && r2 == read
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesCountsTransitions(t *testing.T) {
	tl := table2Baseline()
	two := tl.Repeat(2)
	entries := two.Entries()
	// C0 C2 C8 C0 C2 C8 → each entered twice.
	for _, s := range []soc.PackageCState{soc.C0, soc.C2, soc.C8} {
		if entries[s] != 2 {
			t.Errorf("entries[%v] = %d, want 2", s, entries[s])
		}
	}
}

func TestRepeatScalesTotal(t *testing.T) {
	tl := table2Baseline()
	if got, want := tl.Repeat(30).Total(), 30*tl.Total(); got != want {
		t.Fatalf("repeat total = %v, want %v", got, want)
	}
}

func TestTimeInAndDeepest(t *testing.T) {
	tl := table2Baseline()
	period := 2 * units.RefreshRate(60).Window()
	if got := tl.TimeIn(soc.C8); got != period*80/100 {
		t.Fatalf("TimeIn(C8) = %v, want %v", got, period*80/100)
	}
	if tl.DeepestState() != soc.C8 {
		t.Fatalf("deepest = %v, want C8", tl.DeepestState())
	}
	var empty Timeline
	if empty.DeepestState() != soc.C0 {
		t.Fatal("empty timeline deepest should be C0")
	}
}

func TestDRAMBandwidth(t *testing.T) {
	p := Phase{Duration: time.Second, DRAMRead: units.GB, DRAMWrite: units.GB}
	if got := p.DRAMBandwidth(); math.Abs(float64(got-units.GBps(2))) > 1 {
		t.Fatalf("bandwidth = %v, want 2 GB/s", got)
	}
	if (Phase{}).DRAMBandwidth() != 0 {
		t.Fatal("zero-duration phase should have zero bandwidth")
	}
}

func TestStringSummary(t *testing.T) {
	tl := table2Baseline()
	got := tl.String()
	if !strings.Contains(got, "C0(9.0%)") || !strings.Contains(got, "C8(80.0%)") {
		t.Fatalf("summary = %q", got)
	}
	// Depth-ordered: C0 before C2 before C8.
	if strings.Index(got, "C0") > strings.Index(got, "C8") {
		t.Fatalf("summary not depth-ordered: %q", got)
	}
}

func TestASCIIRendering(t *testing.T) {
	var tl Timeline
	tl.AddState(soc.C0, 2*time.Millisecond, "")
	tl.AddState(soc.C7Prime, 2*time.Millisecond, "")
	tl.AddState(soc.C9, 4*time.Millisecond, "")
	got := tl.ASCII(8)
	if got != "00''9999" {
		t.Fatalf("ASCII = %q, want 00''9999", got)
	}
	if tl.ASCII(0) != "" {
		t.Fatal("zero width should render empty")
	}
	var empty Timeline
	if empty.ASCII(10) != "" {
		t.Fatal("empty timeline should render empty")
	}
}

func TestASCIIWidthExact(t *testing.T) {
	f := func(w uint8) bool {
		if w == 0 {
			return true
		}
		tl := table2Baseline()
		return len(tl.ASCII(int(w))) == int(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderBuildsTimeline(t *testing.T) {
	var eng sim.Engine
	pmu := soc.NewPMU(&eng, nil)
	rec := NewRecorder(&eng)
	pmu.Listen(rec.OnTransition)

	eng.Schedule(3*time.Millisecond, "go idle", func() {
		rec.NoteDRAM(5*units.MB, 2*units.MB)
		pmu.SetComponents(soc.ComponentSet{
			soc.Cores: soc.CompPowerGated, soc.Graphics: soc.CompPowerGated,
			soc.VideoDec: soc.CompPowerGated, soc.MemCtl: soc.CompActive,
			soc.DRAMDev: soc.CompActive, soc.DispCtl: soc.CompActive,
		})
	})
	eng.Schedule(8*time.Millisecond, "deep", func() {
		pmu.SetComponents(soc.ComponentSet{
			soc.MemCtl: soc.CompPowerGated, soc.DRAMDev: soc.CompPowerGated,
			soc.DispCtl: soc.CompIdle, soc.EDPHost: soc.CompIdle,
		})
	})
	eng.RunUntil(16 * time.Millisecond)
	tl := rec.Finish()

	if len(tl.Phases) != 3 {
		t.Fatalf("phases = %d (%v), want 3", len(tl.Phases), tl.Phases)
	}
	if tl.Phases[0].State != soc.C0 || tl.Phases[0].Duration != 3*time.Millisecond {
		t.Fatalf("phase 0 = %+v", tl.Phases[0])
	}
	if tl.Phases[0].DRAMRead != 5*units.MB || tl.Phases[0].DRAMWrite != 2*units.MB {
		t.Fatalf("phase 0 traffic = %+v", tl.Phases[0])
	}
	if tl.Phases[1].State != soc.C2 || tl.Phases[1].Duration != 5*time.Millisecond {
		t.Fatalf("phase 1 = %+v", tl.Phases[1])
	}
	if tl.Phases[2].State != soc.C8 || tl.Phases[2].Duration != 8*time.Millisecond {
		t.Fatalf("phase 2 = %+v", tl.Phases[2])
	}
	if tl.Total() != 16*time.Millisecond {
		t.Fatalf("total = %v", tl.Total())
	}
}

func TestRecorderBurstAndLabel(t *testing.T) {
	var eng sim.Engine
	rec := NewRecorder(&eng)
	rec.NoteBurst()
	rec.NoteLabel("burst drain")
	eng.Schedule(time.Millisecond, "tick", func() {})
	eng.Run()
	tl := rec.Finish()
	if len(tl.Phases) != 1 || !tl.Phases[0].EDPBurst || tl.Phases[0].Label != "burst drain" {
		t.Fatalf("phases = %+v", tl.Phases)
	}
}
