// Package trace records and analyzes package C-state timelines. A Timeline
// is the simulator's counterpart to the paper's VTune residency counters
// (§5.3): the power model folds a timeline into residencies R_Ci and
// per-state transition counts, and the examples render timelines as ASCII
// charts mirroring the paper's Figs 3, 6, and 7.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"burstlink/internal/soc"
	"burstlink/internal/units"
)

// Phase is one contiguous interval spent in a single package C-state,
// annotated with the DRAM traffic and link mode active during it — the
// quantities the power model needs beyond the bare state.
type Phase struct {
	State    soc.PackageCState
	Duration time.Duration
	// DRAMRead and DRAMWrite are bytes moved to/from main memory during
	// the phase; they drive DRAM operating power (§5.2).
	DRAMRead, DRAMWrite units.ByteSize
	// EDPBurst marks the eDP link running at maximum bandwidth rather
	// than panel pixel rate; burst mode costs extra link power (Table 2's
	// elevated BurstLink state powers).
	EDPBurst bool
	// GPUActive marks the graphics engine busy (VR projective
	// transformation, §2.4); the power model adds the GPU's active power
	// on top of the package-state base.
	GPUActive bool
	// Boost scales the active-IP power of the phase beyond the
	// workload's DVFS demand (race-to-sleep frequency boosting, §6.4).
	// Zero or one means no boost.
	Boost float64
	// Label annotates what the pipeline was doing, e.g. "decode", "PSR".
	Label string
}

// DRAMBandwidth returns the average DRAM bandwidth during the phase.
func (p Phase) DRAMBandwidth() units.DataRate {
	if p.Duration <= 0 {
		return 0
	}
	return units.BytesPerSecond(float64(p.DRAMRead+p.DRAMWrite) / p.Duration.Seconds())
}

// Timeline is an ordered sequence of phases.
type Timeline struct {
	Phases []Phase
}

// Add appends a phase; zero-duration phases are dropped.
func (t *Timeline) Add(p Phase) {
	if p.Duration <= 0 {
		return
	}
	t.Phases = append(t.Phases, p)
}

// AddState appends a bare phase with no DRAM traffic.
func (t *Timeline) AddState(s soc.PackageCState, d time.Duration, label string) {
	t.Add(Phase{State: s, Duration: d, Label: label})
}

// Total returns the wall time the timeline covers.
func (t Timeline) Total() time.Duration {
	var sum time.Duration
	for _, p := range t.Phases {
		sum += p.Duration
	}
	return sum
}

// Append concatenates other onto t.
func (t *Timeline) Append(other Timeline) {
	t.Phases = append(t.Phases, other.Phases...)
}

// Clone returns a deep copy of the timeline (Phase is a value struct,
// so copying the slice copies everything). memo.Do recognizes this
// method and returns clones instead of cache-resident originals — the
// deep-copy-on-get guard — so memoized period timelines can never be
// poisoned through a caller-held alias.
func (t Timeline) Clone() Timeline {
	return Timeline{Phases: append([]Phase(nil), t.Phases...)}
}

// Repeat returns a timeline of t repeated n times.
func (t Timeline) Repeat(n int) Timeline {
	out := Timeline{Phases: make([]Phase, 0, len(t.Phases)*n)}
	for i := 0; i < n; i++ {
		out.Phases = append(out.Phases, t.Phases...)
	}
	return out
}

// Compact merges adjacent phases that share state, burst flag, and label,
// summing durations and traffic. It returns the receiver for chaining.
func (t *Timeline) Compact() *Timeline {
	if len(t.Phases) < 2 {
		return t
	}
	out := t.Phases[:1]
	for _, p := range t.Phases[1:] {
		last := &out[len(out)-1]
		if p.State == last.State && p.EDPBurst == last.EDPBurst &&
			p.GPUActive == last.GPUActive && p.Label == last.Label {
			last.Duration += p.Duration
			last.DRAMRead += p.DRAMRead
			last.DRAMWrite += p.DRAMWrite
			continue
		}
		out = append(out, p)
	}
	t.Phases = out
	return t
}

// Residency returns the fraction of total time spent in each package
// C-state that appears in the timeline. Fractions sum to 1 (for a
// non-empty timeline).
func (t Timeline) Residency() map[soc.PackageCState]float64 {
	total := t.Total()
	out := make(map[soc.PackageCState]float64)
	if total <= 0 {
		return out
	}
	for _, p := range t.Phases {
		out[p.State] += float64(p.Duration) / float64(total)
	}
	return out
}

// TimeIn returns the total duration spent in state s.
func (t Timeline) TimeIn(s soc.PackageCState) time.Duration {
	var sum time.Duration
	for _, p := range t.Phases {
		if p.State == s {
			sum += p.Duration
		}
	}
	return sum
}

// Entries counts how many times each state is entered (transitions into
// the state from a different one). The power model charges entry/exit
// latency energy per entry (§5.2).
func (t Timeline) Entries() map[soc.PackageCState]int {
	out := make(map[soc.PackageCState]int)
	prev := soc.PackageCState(-1)
	for _, p := range t.Phases {
		if p.State != prev {
			out[p.State]++
			prev = p.State
		}
	}
	return out
}

// DRAMTraffic sums all DRAM reads and writes over the timeline.
func (t Timeline) DRAMTraffic() (read, write units.ByteSize) {
	for _, p := range t.Phases {
		read += p.DRAMRead
		write += p.DRAMWrite
	}
	return read, write
}

// DeepestState returns the deepest state reached, or C0 for an empty
// timeline.
func (t Timeline) DeepestState() soc.PackageCState {
	deepest := soc.C0
	for _, p := range t.Phases {
		if p.State.DeeperThan(deepest) {
			deepest = p.State
		}
	}
	return deepest
}

// String renders a compact one-line summary such as
// "C0(9.0%) C2(11.0%) C8(80.0%)" ordered by state depth.
func (t Timeline) String() string {
	res := t.Residency()
	states := make([]soc.PackageCState, 0, len(res))
	for s := range res {
		states = append(states, s)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })
	parts := make([]string, len(states))
	for i, s := range states {
		parts[i] = fmt.Sprintf("%v(%.1f%%)", s, res[s]*100)
	}
	return strings.Join(parts, " ")
}

// ASCII renders the timeline as a fixed-width bar of state labels, the
// textual analogue of the paper's Figs 3/6/7. width is the number of
// character cells; each cell shows the state active at its midpoint.
func (t Timeline) ASCII(width int) string {
	total := t.Total()
	if total <= 0 || width <= 0 {
		return ""
	}
	var b strings.Builder
	cell := total / time.Duration(width)
	idx, elapsed := 0, time.Duration(0)
	for i := 0; i < width; i++ {
		mid := cell*time.Duration(i) + cell/2
		for idx < len(t.Phases)-1 && elapsed+t.Phases[idx].Duration <= mid {
			elapsed += t.Phases[idx].Duration
			idx++
		}
		b.WriteString(cellGlyph(t.Phases[idx].State))
	}
	return b.String()
}

func cellGlyph(s soc.PackageCState) string {
	switch s {
	case soc.C0:
		return "0"
	case soc.C2:
		return "2"
	case soc.C3:
		return "3"
	case soc.C6:
		return "6"
	case soc.C7:
		return "7"
	case soc.C7Prime:
		return "'"
	case soc.C8:
		return "8"
	case soc.C9:
		return "9"
	case soc.C10:
		return "X"
	}
	return "?"
}
