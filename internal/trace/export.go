package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// chromeEvent is one entry of the Chrome trace-viewer (about://tracing /
// Perfetto) JSON array format.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`  // microseconds
	Dur   float64           `json:"dur"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// ChromeTrace renders the timeline as Chrome trace-viewer JSON: each
// phase becomes a complete ("X") event on a single track, so a timeline
// can be dropped into Perfetto/about://tracing and inspected visually —
// the closest thing to the paper's Fig 3/6/7 plots this side of a GUI.
func (t Timeline) ChromeTrace(track string) ([]byte, error) {
	events := make([]chromeEvent, 0, len(t.Phases))
	var at float64
	for _, ph := range t.Phases {
		dur := float64(ph.Duration.Microseconds())
		args := map[string]string{"state": ph.State.String()}
		if ph.Label != "" {
			args["label"] = ph.Label
		}
		if ph.DRAMRead+ph.DRAMWrite > 0 {
			args["dram"] = fmt.Sprintf("r=%v w=%v", ph.DRAMRead, ph.DRAMWrite)
		}
		if ph.EDPBurst {
			args["edp"] = "burst"
		}
		name := ph.State.String()
		if ph.Label != "" {
			name += " " + ph.Label
		}
		events = append(events, chromeEvent{
			Name: name, Cat: "cstate", Phase: "X",
			TS: at, Dur: dur, PID: 1, TID: 1, Args: args,
		})
		at += dur
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
		Metadata    map[string]string
	}{events, "ms", map[string]string{"track": track}}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
