package trace

import (
	"time"

	"burstlink/internal/sim"
	"burstlink/internal/soc"
	"burstlink/internal/units"
)

// Recorder converts live PMU transitions into a Timeline. It also accepts
// DRAM traffic notifications so phases carry bandwidth information.
//
// Attach with:
//
//	rec := trace.NewRecorder(eng)
//	pmu.Listen(rec.OnTransition)
//	...
//	tl := rec.Finish(pmu.State())
type Recorder struct {
	eng *sim.Engine

	tl        Timeline
	lastAt    time.Duration
	lastState soc.PackageCState
	started   bool

	pendRead, pendWrite units.ByteSize
	pendBurst           bool
	pendLabel           string
}

// NewRecorder builds a recorder that timestamps against eng. Recording
// starts at the engine's current time in state C0.
func NewRecorder(eng *sim.Engine) *Recorder {
	return &Recorder{eng: eng, lastAt: eng.Now(), lastState: soc.C0, started: true}
}

// OnTransition is the PMU listener entry point.
func (r *Recorder) OnTransition(tr soc.Transition) {
	r.closePhase(tr.At)
	r.lastState = tr.To
}

// NoteDRAM accrues DRAM traffic to the current phase.
func (r *Recorder) NoteDRAM(read, write units.ByteSize) {
	r.pendRead += read
	r.pendWrite += write
}

// NoteBurst marks the current phase as using the eDP link at maximum
// bandwidth.
func (r *Recorder) NoteBurst() { r.pendBurst = true }

// NoteLabel annotates the current phase.
func (r *Recorder) NoteLabel(label string) { r.pendLabel = label }

func (r *Recorder) closePhase(at time.Duration) {
	d := at - r.lastAt
	if d > 0 {
		r.tl.Add(Phase{
			State:     r.lastState,
			Duration:  d,
			DRAMRead:  r.pendRead,
			DRAMWrite: r.pendWrite,
			EDPBurst:  r.pendBurst,
			Label:     r.pendLabel,
		})
	}
	r.lastAt = at
	r.pendRead, r.pendWrite, r.pendBurst, r.pendLabel = 0, 0, false, ""
}

// Finish closes the open phase at the engine's current time and returns
// the accumulated timeline. The recorder may continue recording afterwards.
func (r *Recorder) Finish() Timeline {
	r.closePhase(r.eng.Now())
	return r.tl
}
