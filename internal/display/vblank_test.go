package display

import (
	"math/rand"
	"testing"
	"time"

	"burstlink/internal/sim"
	"burstlink/internal/units"
)

func vblankSetup(double bool) (*sim.Engine, *Panel, *VblankDriver) {
	eng := &sim.Engine{}
	panel := NewPanel(Config{Resolution: units.Resolution{Width: 64, Height: 32}, BPP: 24, Refresh: 60, DoubleRFB: double})
	panel.ReceiveFrame(Frame{Seq: 0})
	panel.Store().Flip()
	return eng, panel, NewVblankDriver(eng, panel)
}

func TestVblankCadence(t *testing.T) {
	eng, _, d := vblankSetup(true)
	d.RunFor(time.Second)
	// 60 Hz for one second: 60 scans.
	if d.Scans() != 60 {
		t.Fatalf("scans = %d, want 60", d.Scans())
	}
	if eng.Now() != time.Second {
		t.Fatalf("clock = %v", eng.Now())
	}
}

func TestVblankRandomBurstArrivalsNeverTearOnDRFB(t *testing.T) {
	// Property: frames bursting in at arbitrary instants — mid-scan or
	// not — never tear on a DRFB panel and always display in order.
	rng := rand.New(rand.NewSource(7))
	_, panel, d := vblankSetup(true)
	var displayed []int
	d.OnVblank(func(seq int) { displayed = append(displayed, seq) })

	window := units.RefreshRate(60).Window()
	for i := 1; i <= 100; i++ {
		// Advance a random fraction of a window, then deliver.
		d.RunFor(time.Duration(rng.Int63n(int64(window))))
		if err := d.DeliverMidScan(Frame{Seq: i}); err != nil {
			t.Fatal(err)
		}
		// Let at least one vblank pass so the flip publishes.
		d.RunFor(window)
	}
	if panel.Stats().Tears != 0 {
		t.Fatalf("tears = %d on DRFB", panel.Stats().Tears)
	}
	for i := 1; i < len(displayed); i++ {
		if displayed[i] < displayed[i-1] {
			t.Fatalf("display order regressed: %v", displayed[i-1:i+1])
		}
	}
	if panel.Stats().UniqueFrames < 90 {
		t.Fatalf("unique frames = %d, want ~100", panel.Stats().UniqueFrames)
	}
}

func TestVblankMidScanTearsOnSingleRFB(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, panel, d := vblankSetup(false)
	window := units.RefreshRate(60).Window()
	for i := 1; i <= 50; i++ {
		// Deliver strictly mid-scan (never at a vblank instant).
		d.RunFor(time.Duration(rng.Int63n(int64(window)-2) + 1))
		if err := d.DeliverMidScan(Frame{Seq: i}); err != nil {
			t.Fatal(err)
		}
		d.RunFor(window)
	}
	if panel.Stats().Tears == 0 {
		t.Fatal("mid-scan deliveries on a single RFB must tear")
	}
}

func TestVblankStop(t *testing.T) {
	_, _, d := vblankSetup(true)
	d.RunFor(100 * time.Millisecond)
	n := d.Scans()
	d.Stop()
	d.RunFor(100 * time.Millisecond)
	if d.Scans() != n {
		t.Fatal("scans continued after Stop")
	}
	if err := d.DeliverMidScan(Frame{Seq: 99}); err == nil {
		t.Fatal("delivery after stop should fail")
	}
}
