package display

import (
	"bytes"
	"testing"
	"testing/quick"

	"burstlink/internal/edp"
	"burstlink/internal/units"
)

func fhdPanel(double bool) *Panel {
	return NewPanel(Config{Resolution: units.FHD, BPP: 24, Refresh: 60, DoubleRFB: double})
}

func metaFrame(seq int) Frame { return Frame{Seq: seq} }

func TestConfigDerived(t *testing.T) {
	cfg := Config{Resolution: units.R4K, BPP: 24, Refresh: 60}
	if cfg.FrameSize() != units.R4K.FrameSize(24) {
		t.Fatal("frame size wrong")
	}
	if cfg.PixelRate() != units.RefreshRate(60).PixelRate(units.R4K, 24) {
		t.Fatal("pixel rate wrong")
	}
}

func TestRFBSingleBankTearsOnScanOverlap(t *testing.T) {
	// The conventional single RFB tears if the host writes during
	// scan-out — the reason conventional links are pixel-paced.
	r := NewRFB(units.MB)
	if err := r.Write(metaFrame(1)); err != nil {
		t.Fatal(err)
	}
	r.BeginScan()
	if err := r.Write(metaFrame(2)); err != nil {
		t.Fatal(err)
	}
	r.EndScan()
	if r.Tears() != 1 {
		t.Fatalf("tears = %d, want 1", r.Tears())
	}
}

func TestRFBWriteBetweenScansIsClean(t *testing.T) {
	r := NewRFB(units.MB)
	r.Write(metaFrame(1))
	r.BeginScan()
	r.EndScan()
	r.Write(metaFrame(2))
	if r.Tears() != 0 {
		t.Fatalf("tears = %d, want 0", r.Tears())
	}
}

func TestDRFBWriteDuringScanIsSafe(t *testing.T) {
	// BurstLink's key enabler: the DRFB takes a full-bandwidth write
	// while the other bank is scanned — zero tears (§4.1).
	d := NewDRFB(units.MB)
	d.Write(metaFrame(1))
	d.Flip()
	d.BeginScan()
	if err := d.Write(metaFrame(2)); err != nil {
		t.Fatal(err)
	}
	d.EndScan()
	if d.Tears() != 0 {
		t.Fatalf("tears = %d, want 0", d.Tears())
	}
	// The new frame becomes visible only after FrameReady/flip.
	if f, _ := d.Visible(); f.Seq != 1 {
		t.Fatalf("visible seq = %d before flip, want 1", f.Seq)
	}
	d.Flip()
	if f, _ := d.Visible(); f.Seq != 2 {
		t.Fatalf("visible seq = %d after flip, want 2", f.Seq)
	}
	if d.Flips() != 2 {
		t.Fatalf("flips = %d", d.Flips())
	}
}

func TestDRFBFlipWithoutPendingIsNoop(t *testing.T) {
	d := NewDRFB(units.MB)
	d.Write(metaFrame(1))
	d.Flip()
	before, _ := d.Visible()
	d.Flip() // nothing pending
	after, _ := d.Visible()
	if before.Seq != after.Seq {
		t.Fatal("flip without pending changed visible frame")
	}
	if d.HasPending() {
		t.Fatal("pending should be clear")
	}
}

func TestStoreCapacity(t *testing.T) {
	for _, store := range []FrameStore{NewRFB(units.KB), NewDRFB(units.KB)} {
		f := Frame{Seq: 1, Data: make([]byte, 2*units.KB)}
		if err := store.Write(f); err == nil {
			t.Errorf("%T: oversized write should fail", store)
		}
		if store.Capacity() != units.KB {
			t.Errorf("%T: capacity wrong", store)
		}
	}
	if NewRFB(units.KB).Banks() != 1 || NewDRFB(units.KB).Banks() != 2 {
		t.Fatal("bank counts wrong")
	}
}

func TestDRFBAlternatesBanksUnderFlipDiscipline(t *testing.T) {
	// Property: with the write→flip→scan discipline, any sequence of N
	// frames displays in order with zero tears.
	f := func(n uint8) bool {
		d := NewDRFB(units.MB)
		for i := 0; i <= int(n%50); i++ {
			if d.Write(metaFrame(i)) != nil {
				return false
			}
			d.Flip()
			d.BeginScan()
			vis, ok := d.Visible()
			d.EndScan()
			if !ok || vis.Seq != i {
				return false
			}
		}
		return d.Tears() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPanelRefreshRequiresFrame(t *testing.T) {
	p := fhdPanel(false)
	if _, err := p.Refresh(); err == nil {
		t.Fatal("refresh with empty store should fail")
	}
}

func TestPanelReceiveAndRefresh(t *testing.T) {
	p := fhdPanel(false)
	if err := p.ReceiveFrame(metaFrame(7)); err != nil {
		t.Fatal(err)
	}
	f, err := p.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq != 7 {
		t.Fatalf("displayed seq = %d", f.Seq)
	}
	st := p.Stats()
	if st.Refreshes != 1 || st.UniqueFrames != 1 || st.SelfRefresh != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPanelRejectsWrongSizeFrame(t *testing.T) {
	p := fhdPanel(false)
	bad := Frame{Seq: 1, Data: make([]byte, 100)}
	if err := p.ReceiveFrame(bad); err == nil {
		t.Fatal("wrong-size frame should be rejected")
	}
}

func TestPSRProtocol(t *testing.T) {
	p := fhdPanel(false)
	// PSR_ENTER before any frame must fail: nothing to self-refresh from.
	if err := p.HandleSideband(edp.SidebandMsg{Kind: edp.PSREnter}); err == nil {
		t.Fatal("PSR_ENTER with empty RFB should fail")
	}
	p.ReceiveFrame(metaFrame(1))
	if err := p.HandleSideband(edp.SidebandMsg{Kind: edp.PSREnter}); err != nil {
		t.Fatal(err)
	}
	if p.PSR() != PSRActive {
		t.Fatalf("psr = %v", p.PSR())
	}
	// Self-refresh passes count as such.
	p.Refresh()
	p.Refresh()
	if st := p.Stats(); st.SelfRefresh != 2 {
		t.Fatalf("self refresh = %d", st.SelfRefresh)
	}
	if err := p.HandleSideband(edp.SidebandMsg{Kind: edp.PSRExit}); err != nil {
		t.Fatal(err)
	}
	if p.PSR() != PSRInactive {
		t.Fatalf("psr = %v after exit", p.PSR())
	}
}

func TestPSR2UpdateRequiresActivePSR(t *testing.T) {
	p := fhdPanel(false)
	p.ReceiveFrame(metaFrame(1))
	if err := p.HandleSideband(edp.SidebandMsg{Kind: edp.PSR2Update}); err == nil {
		t.Fatal("PSR2_UPDATE while inactive should fail")
	}
	p.HandleSideband(edp.SidebandMsg{Kind: edp.PSREnter})
	if err := p.HandleSideband(edp.SidebandMsg{Kind: edp.PSR2Update}); err != nil {
		t.Fatal(err)
	}
	if p.PSR() != PSRActiveSU {
		t.Fatalf("psr = %v", p.PSR())
	}
}

func TestSelectiveUpdateMetadata(t *testing.T) {
	p := fhdPanel(false)
	p.ReceiveFrame(metaFrame(1))
	p.HandleSideband(edp.SidebandMsg{Kind: edp.PSREnter})
	p.HandleSideband(edp.SidebandMsg{Kind: edp.PSR2Update})

	region := edp.Rect{X: 100, Y: 100, W: 640, H: 360}
	if err := p.SelectiveUpdate(region, nil, 2); err != nil {
		t.Fatal(err)
	}
	f, _ := p.Refresh()
	if f.Seq != 2 {
		t.Fatalf("seq after SU = %d, want 2", f.Seq)
	}
	wantBytes := units.ByteSize(640 * 360 * 3)
	if st := p.Stats(); st.SUBytes != wantBytes {
		t.Fatalf("SU bytes = %v, want %v", st.SUBytes, wantBytes)
	}
}

func TestSelectiveUpdatePixels(t *testing.T) {
	// With real pixel data, the update must land at the right offsets.
	cfg := Config{Resolution: units.Resolution{Width: 8, Height: 4}, BPP: 24, Refresh: 60}
	p := NewPanel(cfg)
	base := make([]byte, cfg.FrameSize())
	p.ReceiveFrame(Frame{Seq: 1, Data: base})
	p.HandleSideband(edp.SidebandMsg{Kind: edp.PSREnter})
	p.HandleSideband(edp.SidebandMsg{Kind: edp.PSR2Update})

	region := edp.Rect{X: 2, Y: 1, W: 3, H: 2}
	upd := bytes.Repeat([]byte{0xAB}, region.Pixels()*3)
	if err := p.SelectiveUpdate(region, upd, 2); err != nil {
		t.Fatal(err)
	}
	f, _ := p.Refresh()
	// Check a pixel inside the region and one outside.
	inside := (1*8 + 2) * 3
	if f.Data[inside] != 0xAB {
		t.Fatalf("pixel inside region not updated: %x", f.Data[inside])
	}
	outside := (0*8 + 0) * 3
	if f.Data[outside] != 0x00 {
		t.Fatalf("pixel outside region modified: %x", f.Data[outside])
	}
}

func TestSelectiveUpdateValidation(t *testing.T) {
	p := fhdPanel(false)
	p.ReceiveFrame(metaFrame(1))
	p.HandleSideband(edp.SidebandMsg{Kind: edp.PSREnter})
	p.HandleSideband(edp.SidebandMsg{Kind: edp.PSR2Update})

	if err := p.SelectiveUpdate(edp.Rect{}, nil, 2); err == nil {
		t.Fatal("empty region should fail")
	}
	if err := p.SelectiveUpdate(edp.Rect{X: 1900, Y: 0, W: 100, H: 10}, nil, 2); err == nil {
		t.Fatal("out-of-bounds region should fail")
	}
	if err := p.SelectiveUpdate(edp.Rect{X: 0, Y: 0, W: 2, H: 2}, []byte{1}, 2); err == nil {
		t.Fatal("short payload should fail")
	}
}

func TestFrameReadyFlipsDRFB(t *testing.T) {
	p := fhdPanel(true)
	p.ReceiveFrame(metaFrame(1))
	if err := p.HandleSideband(edp.SidebandMsg{Kind: edp.FrameReady}); err != nil {
		t.Fatal(err)
	}
	f, err := p.Refresh()
	if err != nil || f.Seq != 1 {
		t.Fatalf("frame = %+v err = %v", f, err)
	}
}

func TestBurstIntoDRFBWhileScanning(t *testing.T) {
	// End-to-end DRFB discipline: frame N scans while frame N+1 bursts
	// in; unique frames display in order with zero tears and no
	// regressions.
	p := fhdPanel(true)
	p.ReceiveFrame(metaFrame(0))
	p.HandleSideband(edp.SidebandMsg{Kind: edp.FrameReady})
	for i := 1; i <= 30; i++ {
		p.Store().BeginScan()
		p.ReceiveFrame(metaFrame(i)) // burst lands mid-scan
		p.Store().EndScan()
		p.Refresh()
		p.HandleSideband(edp.SidebandMsg{Kind: edp.FrameReady})
	}
	st := p.Stats()
	if st.Tears != 0 {
		t.Fatalf("tears = %d, want 0", st.Tears)
	}
	if st.SeqRegress != 0 {
		t.Fatalf("sequence regressions = %d", st.SeqRegress)
	}
	// Frames 0..29 were refreshed; frame 30 is flipped but not yet scanned.
	if st.UniqueFrames != 30 {
		t.Fatalf("unique frames = %d, want 30", st.UniqueFrames)
	}
	if f, _ := p.Refresh(); f.Seq != 30 {
		t.Fatalf("next refresh shows seq %d, want 30", f.Seq)
	}
}

func TestFrameChecksum(t *testing.T) {
	a := Frame{Seq: 1, Data: []byte{1, 2, 3}}
	b := Frame{Seq: 1, Data: []byte{1, 2, 4}}
	if a.Checksum() == b.Checksum() {
		t.Fatal("different data should differ in checksum")
	}
	if (Frame{}).Checksum() != 0 {
		t.Fatal("metadata-only frame checksum should be 0")
	}
}

func TestPSRStateString(t *testing.T) {
	if PSRInactive.String() != "inactive" || PSRActiveSU.String() != "active-su" {
		t.Fatal("names wrong")
	}
	if PSRState(9).String() != "PSRState(9)" {
		t.Fatal("out-of-range name wrong")
	}
}
