package display

import (
	"fmt"

	"burstlink/internal/edp"
	"burstlink/internal/units"
)

// PSRState is the panel's self-refresh protocol state (§2.3).
type PSRState int

// PSR protocol states.
const (
	// PSRInactive: the host drives every refresh over the main link.
	PSRInactive PSRState = iota
	// PSRActive: the panel self-refreshes from its frame store; the host
	// link may power down.
	PSRActive
	// PSRActiveSU: self-refreshing but accepting PSR2 selective updates.
	PSRActiveSU
)

var psrStateNames = [...]string{"inactive", "active", "active-su"}

// String names the PSR state.
func (s PSRState) String() string {
	if s < 0 || int(s) >= len(psrStateNames) {
		return fmt.Sprintf("PSRState(%d)", int(s))
	}
	return psrStateNames[s]
}

// Config describes a panel.
type Config struct {
	Resolution units.Resolution
	BPP        int // bits per pixel, 24 throughout the paper
	Refresh    units.RefreshRate
	// DoubleRFB selects BurstLink's DRFB instead of the single PSR RFB.
	DoubleRFB bool
}

// FrameSize returns the panel's native frame size.
func (c Config) FrameSize() units.ByteSize { return c.Resolution.FrameSize(c.BPP) }

// PixelRate returns the fixed rate at which the pixel formatter feeds the
// LCD drivers, set by resolution, refresh rate, and color depth (§4.2).
func (c Config) PixelRate() units.DataRate { return c.Refresh.PixelRate(c.Resolution, c.BPP) }

// Panel is a display panel: T-con (frame store + PSR machine), pixel
// formatter, and LCD scan-out statistics.
type Panel struct {
	cfg   Config
	store FrameStore
	psr   PSRState

	refreshes    int // total scan passes
	selfRefresh  int // scan passes served from the store under PSR
	uniqueFrames int // distinct frame sequence numbers displayed
	lastSeq      int
	seqRegress   int // frames displayed out of order (model bug indicator)
	suBytes      units.ByteSize
}

// NewPanel builds a panel with the appropriate frame store.
func NewPanel(cfg Config) *Panel {
	var store FrameStore
	if cfg.DoubleRFB {
		store = NewDRFB(cfg.FrameSize())
	} else {
		store = NewRFB(cfg.FrameSize())
	}
	return &Panel{cfg: cfg, store: store, lastSeq: -1}
}

// Config returns the panel configuration.
func (p *Panel) Config() Config { return p.cfg }

// Store exposes the frame store for inspection.
func (p *Panel) Store() FrameStore { return p.store }

// PSR returns the protocol state.
func (p *Panel) PSR() PSRState { return p.psr }

// HandleSideband processes one AUX-channel message (from
// edp.Link.DrainSideband). Invalid transitions return an error.
func (p *Panel) HandleSideband(m edp.SidebandMsg) error {
	switch m.Kind {
	case edp.PSREnter:
		if _, ok := p.store.Visible(); !ok {
			return fmt.Errorf("display: PSR_ENTER with no frame in the RFB")
		}
		p.psr = PSRActive
	case edp.PSRExit:
		p.psr = PSRInactive
	case edp.PSR2Update:
		if p.psr == PSRInactive {
			return fmt.Errorf("display: PSR2_UPDATE while PSR inactive")
		}
		p.psr = PSRActiveSU
	case edp.FrameReady:
		if err := p.store.Flip(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("display: unknown sideband message %v", m.Kind)
	}
	return nil
}

// ReceiveFrame stores a frame arriving over the main link into the frame
// store (❼ in Fig 2 for conventional panels; the DRFB back bank for
// BurstLink panels).
func (p *Panel) ReceiveFrame(f Frame) error {
	if f.Size() > 0 && f.Size() != p.cfg.FrameSize() {
		return fmt.Errorf("display: frame size %v does not match panel %v", f.Size(), p.cfg.FrameSize())
	}
	return p.store.Write(f)
}

// SelectiveUpdate applies a PSR2 partial update to the visible frame: the
// region's pixels are replaced without retransmitting the full frame
// (§2.3, used by BurstLink's windowed-video mode, §4.1). data, when
// non-nil, must contain region.W*region.H pixels in row-major order.
func (p *Panel) SelectiveUpdate(region edp.Rect, data []byte, seq int) error {
	if p.psr != PSRActiveSU {
		return fmt.Errorf("display: selective update in PSR state %v", p.psr)
	}
	if region.Empty() {
		return fmt.Errorf("display: empty update region")
	}
	res := p.cfg.Resolution
	if region.X < 0 || region.Y < 0 || region.X+region.W > res.Width || region.Y+region.H > res.Height {
		return fmt.Errorf("display: region %+v outside panel %v", region, res)
	}
	vis, ok := p.store.Visible()
	if !ok {
		return fmt.Errorf("display: selective update with empty store")
	}
	pxBytes := p.cfg.BPP / 8
	updSize := units.ByteSize(region.Pixels() * pxBytes)
	next := Frame{Seq: seq, Data: append([]byte(nil), vis.Data...)}
	if data != nil {
		if len(data) != int(updSize) {
			return fmt.Errorf("display: update payload %d bytes, want %v", len(data), updSize)
		}
		if len(next.Data) > 0 {
			for row := 0; row < region.H; row++ {
				dst := ((region.Y+row)*res.Width + region.X) * pxBytes
				src := row * region.W * pxBytes
				copy(next.Data[dst:dst+region.W*pxBytes], data[src:src+region.W*pxBytes])
			}
		}
	}
	p.suBytes += updSize
	if err := p.store.Write(next); err != nil {
		return err
	}
	// On a DRFB the update lands in the back bank and publishes on the
	// next vblank; a single RFB makes writes immediately visible and
	// Flip is a no-op.
	return p.store.Flip()
}

// Refresh performs one scan pass: the pixel formatter pulls the visible
// frame and drives the LCD. hostDriven marks whether the pass consumed
// link data (conventional streaming) or served from the store (PSR /
// BurstLink). It returns the displayed frame.
func (p *Panel) Refresh() (Frame, error) {
	p.store.BeginScan()
	f, ok := p.store.Visible()
	p.store.EndScan()
	if !ok {
		return Frame{}, fmt.Errorf("display: refresh with no frame available")
	}
	p.refreshes++
	if p.psr != PSRInactive {
		p.selfRefresh++
	}
	if f.Seq != p.lastSeq {
		if f.Seq < p.lastSeq {
			p.seqRegress++
		}
		p.uniqueFrames++
		p.lastSeq = f.Seq
	}
	return f, nil
}

// Stats summarizes panel activity.
type Stats struct {
	Refreshes    int
	SelfRefresh  int
	UniqueFrames int
	SeqRegress   int
	Tears        int
	SUBytes      units.ByteSize
}

// Stats returns the accumulated counters.
func (p *Panel) Stats() Stats {
	return Stats{
		Refreshes:    p.refreshes,
		SelfRefresh:  p.selfRefresh,
		UniqueFrames: p.uniqueFrames,
		SeqRegress:   p.seqRegress,
		Tears:        p.store.Tears(),
		SUBytes:      p.suBytes,
	}
}
