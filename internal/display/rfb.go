package display

import "burstlink/internal/units"

// RFB is the conventional single remote frame buffer that PSR panels
// embed in the T-con (§2.3). It holds exactly one frame. Because there is
// only one bank, writing a new frame while the pixel formatter scans the
// buffer tears the image — which is why conventional systems pace frame
// delivery to the panel's pixel-update rate instead of bursting.
type RFB struct {
	capacity units.ByteSize
	frame    Frame
	valid    bool
	scanning bool
	tears    int
}

// NewRFB builds a single-bank remote frame buffer.
func NewRFB(capacity units.ByteSize) *RFB {
	return &RFB{capacity: capacity}
}

// Banks implements FrameStore.
func (r *RFB) Banks() int { return 1 }

// Capacity implements FrameStore.
func (r *RFB) Capacity() units.ByteSize { return r.capacity }

// Write implements FrameStore. A write during scan-out succeeds (hardware
// does not block it) but records a tear.
func (r *RFB) Write(f Frame) error {
	if f.Size() > r.capacity {
		return errFrameTooLarge(f.Size(), r.capacity)
	}
	if r.scanning {
		r.tears++
	}
	r.frame = f
	r.valid = true
	return nil
}

// Visible implements FrameStore.
func (r *RFB) Visible() (Frame, bool) { return r.frame, r.valid }

// Flip implements FrameStore; on a single bank it is a no-op because
// writes are immediately visible.
func (r *RFB) Flip() error { return nil }

// BeginScan implements FrameStore.
func (r *RFB) BeginScan() { r.scanning = true }

// EndScan implements FrameStore.
func (r *RFB) EndScan() { r.scanning = false }

// Tears implements FrameStore.
func (r *RFB) Tears() int { return r.tears }

// DRFB is BurstLink's double remote frame buffer (§4.1): two banks so the
// link can deposit a new frame at full burst bandwidth into one bank while
// the pixel formatter refreshes the panel from the other. The paper notes
// the DRFB's DRAM mounts on a flexible PCB off-panel and adds ~58 mW and
// ~32.5 cents to the panel BOM (§4.4); those constants live here for the
// cost/power accounting.
type DRFB struct {
	capacity units.ByteSize
	banks    [2]Frame
	valid    [2]bool
	scanIdx  int // bank the PF refreshes from
	writeIdx int // bank the link writes into
	pending  bool
	scanning bool
	tears    int
	flips    int
}

// DRFBExtraPower is the additional panel power of doubling the RFB,
// estimated from Samsung's cost-effective driver-IC proposal (§4.4).
const DRFBExtraPower = 58 * units.MilliWatt

// NewDRFB builds a double remote frame buffer.
func NewDRFB(capacity units.ByteSize) *DRFB {
	return &DRFB{capacity: capacity, scanIdx: 0, writeIdx: 1}
}

// Banks implements FrameStore.
func (d *DRFB) Banks() int { return 2 }

// Capacity implements FrameStore.
func (d *DRFB) Capacity() units.ByteSize { return d.capacity }

// Write implements FrameStore. Writes go to the back bank, so they are
// always safe with respect to the ongoing scan — the property that
// decouples frame transfer from pixel update (§4.2).
func (d *DRFB) Write(f Frame) error {
	if f.Size() > d.capacity {
		return errFrameTooLarge(f.Size(), d.capacity)
	}
	if d.writeIdx == d.scanIdx && d.scanning {
		// Unreachable under the flip discipline, but guarded: a model
		// that breaks the discipline must see the tear.
		d.tears++
	}
	d.banks[d.writeIdx] = f
	d.valid[d.writeIdx] = true
	d.pending = true
	return nil
}

// Visible implements FrameStore.
func (d *DRFB) Visible() (Frame, bool) { return d.banks[d.scanIdx], d.valid[d.scanIdx] }

// Flip implements FrameStore: publishes the back bank. The T-con defers
// the actual swap to the next vblank boundary; the model performs it
// immediately but never mid-scan (callers flip between EndScan and
// BeginScan, enforced by the panel).
func (d *DRFB) Flip() error {
	if !d.pending {
		return nil // nothing new to publish
	}
	d.scanIdx, d.writeIdx = d.writeIdx, d.scanIdx
	d.pending = false
	d.flips++
	return nil
}

// HasPending reports whether a written frame awaits publication.
func (d *DRFB) HasPending() bool { return d.pending }

// Flips returns how many frames were published.
func (d *DRFB) Flips() int { return d.flips }

// BeginScan implements FrameStore.
func (d *DRFB) BeginScan() { d.scanning = true }

// EndScan implements FrameStore.
func (d *DRFB) EndScan() { d.scanning = false }

// Tears implements FrameStore.
func (d *DRFB) Tears() int { return d.tears }
