package display

import (
	"testing"
	"time"

	"burstlink/internal/edp"
	"burstlink/internal/units"
)

func TestLCDLineTime(t *testing.T) {
	lcd := NewLCD(Config{Resolution: units.FHD, BPP: 24, Refresh: 60})
	// 1080 lines in 16.67 ms → ~15.4 µs per line.
	lt := lcd.LineTime()
	if lt < 15*time.Microsecond || lt > 16*time.Microsecond {
		t.Fatalf("line time = %v, want ~15.4µs", lt)
	}
	if NewLCD(Config{}).LineTime() != 0 {
		t.Fatal("degenerate config should yield zero line time")
	}
}

func TestLCDScanOut(t *testing.T) {
	cfg := Config{Resolution: units.FHD, BPP: 24, Refresh: 60}
	lcd := NewLCD(cfg)
	d, err := lcd.ScanOut(Frame{Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d != cfg.Refresh.Window() {
		t.Fatalf("scan duration = %v, want one window", d)
	}
	st := lcd.Stats()
	if st.Frames != 1 || st.LinesScanned != 1080 {
		t.Fatalf("stats = %+v", st)
	}
	// Wrong-sized pixel data is rejected.
	if _, err := lcd.ScanOut(Frame{Seq: 2, Data: make([]byte, 10)}); err == nil {
		t.Fatal("wrong-size frame should fail")
	}
}

func TestLCDFlickerOnOverdrive(t *testing.T) {
	// §3 Observation 2: feeding the drivers above the panel's fixed
	// pixel-update rate flickers. The eDP burst rate (25.92 Gbps) is far
	// above an FHD60 panel's ~3 Gbps update rate — this is exactly why a
	// burst *requires* the DRFB to decouple link from glass.
	cfg := Config{Resolution: units.FHD, BPP: 24, Refresh: 60}
	lcd := NewLCD(cfg)
	if lcd.CheckSourceRate(cfg.PixelRate()) != true {
		t.Fatal("native rate should be clean")
	}
	if lcd.CheckSourceRate(edp.EDP14().MaxBandwidth()) {
		t.Fatal("burst-rate feed must flicker without a DRFB")
	}
	if lcd.Stats().Flicker != 1 {
		t.Fatalf("flicker = %d", lcd.Stats().Flicker)
	}
	// With the DRFB, the PF pulls from the buffer at the native rate no
	// matter how fast the link filled it: clean.
	if !lcd.CheckSourceRate(cfg.PixelRate()) {
		t.Fatal("DRFB-decoupled feed should be clean")
	}
}

func TestLCDToleranceBand(t *testing.T) {
	cfg := Config{Resolution: units.FHD, BPP: 24, Refresh: 60}
	lcd := NewLCD(cfg)
	// 1% over is within driver tolerance.
	if !lcd.CheckSourceRate(units.DataRate(float64(cfg.PixelRate()) * 1.01)) {
		t.Fatal("1% overdrive should be tolerated")
	}
	if lcd.CheckSourceRate(units.DataRate(float64(cfg.PixelRate()) * 1.05)) {
		t.Fatal("5% overdrive should flicker")
	}
}
