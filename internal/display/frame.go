// Package display models the panel side of the display subsystem (§2.3
// and Fig 2): the timing controller (T-con) with its remote frame buffer —
// single RFB in conventional PSR panels, double RFB (DRFB) in BurstLink
// panels (§4.1) — the pixel formatter that feeds the LCD row/column
// drivers, the PSR/PSR2 protocol state machine, and tearing detection,
// which is the observable failure mode of updating a buffer that is being
// scanned out.
package display

import (
	"fmt"
	"hash/crc32"

	"burstlink/internal/units"
)

// Frame is a fully-composed frame as delivered to the panel. Data may be
// nil for timing-only simulations; when present, the panel verifies it end
// to end via checksums.
type Frame struct {
	Seq  int    // presentation sequence number
	Data []byte // raw pixel bytes, len == Resolution.FrameSize(bpp) when set
}

// Size returns the frame payload size.
func (f Frame) Size() units.ByteSize { return units.ByteSize(len(f.Data)) }

// Checksum returns a CRC32 of the pixel data (0 for metadata-only frames).
func (f Frame) Checksum() uint32 {
	if len(f.Data) == 0 {
		return 0
	}
	return crc32.ChecksumIEEE(f.Data)
}

// FrameStore is a T-con frame buffer: either a conventional single RFB or
// BurstLink's DRFB. The scan side reads the visible frame while the link
// side writes incoming frames; whether those can overlap safely is exactly
// what distinguishes the two implementations.
type FrameStore interface {
	// Banks returns the number of frame banks (1 or 2).
	Banks() int
	// Capacity returns the per-bank capacity.
	Capacity() units.ByteSize
	// Write stores an incoming frame. On a single RFB concurrent with an
	// active scan this succeeds but records a tear.
	Write(f Frame) error
	// Visible returns the frame the panel currently refreshes from.
	Visible() (Frame, bool)
	// Flip publishes the most recently written frame for scan-out. On a
	// single RFB this is a no-op (writes are immediately visible).
	Flip() error
	// BeginScan and EndScan bracket one panel refresh pass.
	BeginScan()
	EndScan()
	// Tears returns how many writes landed in a bank being scanned.
	Tears() int
}

// errFrameTooLarge is returned when a frame exceeds the store capacity.
func errFrameTooLarge(got, capacity units.ByteSize) error {
	return fmt.Errorf("display: frame %v exceeds bank capacity %v", got, capacity)
}
