package display

import (
	"fmt"
	"time"

	"burstlink/internal/units"
)

// LCD models the LCD interface of Fig 2 (❽/❾): row and column drivers
// that update the panel's pixels line by line at a fixed rate set by the
// panel's resolution and refresh rate. Its central constraint is the one
// §3 (Observation 2) builds on: the pixel-update rate is fixed by the
// glass — "increasing the PF's pixel update rate without proper changes
// to the LCD panel would cause image flickering and distortion". The
// DRFB exists precisely so the link can run faster than this interface.
type LCD struct {
	cfg Config

	linesScanned int64
	frames       int64
	flicker      int
}

// NewLCD builds the drive electronics for a panel configuration.
func NewLCD(cfg Config) *LCD { return &LCD{cfg: cfg} }

// LineTime returns the time the row driver spends per line.
func (l *LCD) LineTime() time.Duration {
	lines := l.cfg.Resolution.Height
	if lines <= 0 {
		return 0
	}
	return l.cfg.Refresh.Window() / time.Duration(lines)
}

// PixelUpdateRate returns the fixed rate the drivers consume pixel data.
func (l *LCD) PixelUpdateRate() units.DataRate { return l.cfg.PixelRate() }

// ScanOut drives one full frame onto the glass, returning the scan
// duration (one refresh window).
func (l *LCD) ScanOut(f Frame) (time.Duration, error) {
	if f.Size() > 0 && f.Size() != l.cfg.FrameSize() {
		return 0, fmt.Errorf("display: lcd scan of %v frame on %v panel", f.Size(), l.cfg.FrameSize())
	}
	l.linesScanned += int64(l.cfg.Resolution.Height)
	l.frames++
	return l.cfg.Refresh.Window(), nil
}

// CheckSourceRate verifies that the pixel formatter feeds the drivers at
// the panel's fixed rate. A source faster than the glass tolerates
// (>2% over) is recorded as a flicker event — the §3 failure mode a
// conventional (RFB-less burst) design would hit.
func (l *LCD) CheckSourceRate(r units.DataRate) bool {
	if float64(r) > float64(l.PixelUpdateRate())*1.02 {
		l.flicker++
		return false
	}
	return true
}

// Stats reports scan-out counters.
type LCDStats struct {
	Frames       int64
	LinesScanned int64
	Flicker      int
}

// Stats returns the counters.
func (l *LCD) Stats() LCDStats {
	return LCDStats{Frames: l.frames, LinesScanned: l.linesScanned, Flicker: l.flicker}
}
