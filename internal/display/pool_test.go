package display

import "testing"

func TestBufPoolReuse(t *testing.T) {
	b := GetBuf(64)
	if len(b) != 64 {
		t.Fatalf("GetBuf(64) length %d", len(b))
	}
	for i := range b {
		b[i] = byte(i)
	}
	PutBuf(b)
	// A smaller request may reuse the same backing array; either way the
	// slice must have the requested length and full capacity available.
	c := GetBuf(16)
	if len(c) != 16 {
		t.Fatalf("GetBuf(16) length %d", len(c))
	}
	PutBuf(c)
	if d := GetBuf(128); len(d) != 128 {
		t.Fatalf("GetBuf(128) length %d", len(d))
	}
}

func TestPutBufEmptyIsNoop(t *testing.T) {
	PutBuf(nil)
	PutBuf([]byte{})
	if b := GetBuf(8); len(b) != 8 {
		t.Fatalf("GetBuf(8) after empty puts: length %d", len(b))
	}
}
