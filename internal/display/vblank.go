package display

import (
	"fmt"
	"time"

	"burstlink/internal/sim"
)

// VblankDriver ties a panel's refresh cadence to the simulation clock:
// it schedules one scan-out per refresh window and performs DRFB flips
// only at vblank boundaries (between scans), which is the hardware
// discipline that makes BurstLink's mid-scan bursts safe. Frames written
// during a scan wait in the back bank until the next vblank.
type VblankDriver struct {
	eng   *sim.Engine
	panel *Panel

	scans    int
	stopped  bool
	onVblank func(seq int)
}

// NewVblankDriver builds a driver and schedules the first vblank one
// window from now.
func NewVblankDriver(eng *sim.Engine, panel *Panel) *VblankDriver {
	d := &VblankDriver{eng: eng, panel: panel}
	d.schedule()
	return d
}

// OnVblank registers a callback invoked after each scan with the
// displayed frame's sequence number.
func (d *VblankDriver) OnVblank(fn func(seq int)) { d.onVblank = fn }

// Scans returns the number of completed scan-outs.
func (d *VblankDriver) Scans() int { return d.scans }

// Stop halts the refresh cadence after the current window.
func (d *VblankDriver) Stop() { d.stopped = true }

func (d *VblankDriver) schedule() {
	window := d.panel.Config().Refresh.Window()
	if window <= 0 {
		return
	}
	d.eng.Schedule(window, "vblank", func() {
		if d.stopped {
			return
		}
		// Vblank: publish any pending back-bank frame, then scan.
		if err := d.panel.Store().Flip(); err == nil {
			if shown, err := d.panel.Refresh(); err == nil {
				d.scans++
				if d.onVblank != nil {
					d.onVblank(shown.Seq)
				}
			}
		}
		d.schedule()
	})
}

// DeliverMidScan models a burst landing at an arbitrary point of the
// refresh cycle: the frame is written immediately (into the back bank on
// a DRFB panel) and becomes visible at the next vblank. On a single-RFB
// panel a delivery during an active scan tears, which the panel records.
func (d *VblankDriver) DeliverMidScan(f Frame) error {
	if d.stopped {
		return fmt.Errorf("display: driver stopped")
	}
	// Mark the store as mid-scan for the tear check: deliveries are
	// asynchronous to the scan in real hardware; we approximate by
	// treating any delivery not aligned to a vblank instant as mid-scan.
	window := d.panel.Config().Refresh.Window()
	inScan := d.eng.Now()%window != 0
	if inScan {
		d.panel.Store().BeginScan()
	}
	err := d.panel.ReceiveFrame(f)
	if inScan {
		d.panel.Store().EndScan()
	}
	return err
}

// RunFor advances the simulation by the given duration.
func (d *VblankDriver) RunFor(dur time.Duration) {
	d.eng.RunUntil(d.eng.Now() + dur)
}
