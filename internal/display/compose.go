package display

import (
	"fmt"
	"sort"

	"burstlink/internal/edp"
	"burstlink/internal/units"
)

// Plane is one display plane (§3: background, video, application-graphic
// GUI, cursor). "The final image is a composition (overlay) of different
// planes in a pre-defined order of superposition."
type Plane struct {
	Name string
	// Z is the superposition order: higher Z draws on top.
	Z int
	// Rect places the plane on the panel.
	Rect edp.Rect
	// Data is the plane's pixel content (3 bytes/pixel, row-major,
	// Rect.W×Rect.H). Nil means a solid fill of Fill.
	Data []byte
	// Fill is the solid color used when Data is nil.
	Fill [3]byte
	// Transparent marks Fill-colored pixels in Data as see-through
	// (cursor/GUI planes).
	Transparent bool
}

// PlaneKind classifies planes for the destination selector's
// video_plane_only signal.
type PlaneKind int

// Plane kinds (§3's four-plane example).
const (
	PlaneBackground PlaneKind = iota
	PlaneVideo
	PlaneGUI
	PlaneCursor
)

// Compositor is the display controller's plane-composition engine: it
// merges the enabled planes into the single frame the DC sends to the
// panel. When more than the video plane is enabled, BurstLink must fall
// back to the conventional DRAM path precisely because this merge needs
// all the planes' frame buffers (§4.1).
type Compositor struct {
	res    units.Resolution
	planes []Plane

	composed int
	pixels   int64
}

// NewCompositor builds a compositor for the panel resolution.
func NewCompositor(res units.Resolution) *Compositor {
	return &Compositor{res: res}
}

// SetPlane adds or replaces a plane by name.
func (c *Compositor) SetPlane(p Plane) error {
	r := p.Rect
	if r.Empty() || r.X < 0 || r.Y < 0 || r.X+r.W > c.res.Width || r.Y+r.H > c.res.Height {
		return fmt.Errorf("display: plane %q rect %+v outside panel %v", p.Name, r, c.res)
	}
	if p.Data != nil && len(p.Data) != r.Pixels()*3 {
		return fmt.Errorf("display: plane %q data %d bytes, want %d", p.Name, len(p.Data), r.Pixels()*3)
	}
	for i := range c.planes {
		if c.planes[i].Name == p.Name {
			c.planes[i] = p
			return nil
		}
	}
	c.planes = append(c.planes, p)
	return nil
}

// RemovePlane drops a plane by name; unknown names are a no-op.
func (c *Compositor) RemovePlane(name string) {
	for i := range c.planes {
		if c.planes[i].Name == name {
			c.planes = append(c.planes[:i], c.planes[i+1:]...)
			return
		}
	}
}

// PlaneCount returns how many planes are enabled — the quantity the DC
// exposes in its CSRs for the destination selector.
func (c *Compositor) PlaneCount() int { return len(c.planes) }

// VideoPlaneOnly reports whether exactly one plane named "video" is
// enabled (the video_plane_only condition of §4.4).
func (c *Compositor) VideoPlaneOnly() bool {
	return len(c.planes) == 1 && c.planes[0].Name == "video"
}

// Compose merges the planes in Z order into a full frame. It returns the
// composed frame; the pixel count processed feeds DC-work accounting.
func (c *Compositor) Compose(seq int) (Frame, error) {
	if len(c.planes) == 0 {
		return Frame{}, fmt.Errorf("display: compose with no planes")
	}
	out := make([]byte, c.res.Pixels()*3)
	ordered := append([]Plane(nil), c.planes...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Z < ordered[j].Z })
	for _, p := range ordered {
		c.blit(out, p)
	}
	c.composed++
	c.pixels += int64(c.res.Pixels())
	return Frame{Seq: seq, Data: out}, nil
}

func (c *Compositor) blit(dst []byte, p Plane) {
	for y := 0; y < p.Rect.H; y++ {
		rowOff := ((p.Rect.Y+y)*c.res.Width + p.Rect.X) * 3
		for x := 0; x < p.Rect.W; x++ {
			var px [3]byte
			if p.Data == nil {
				px = p.Fill
			} else {
				i := (y*p.Rect.W + x) * 3
				px = [3]byte{p.Data[i], p.Data[i+1], p.Data[i+2]}
				if p.Transparent && px == p.Fill {
					continue
				}
			}
			copy(dst[rowOff+3*x:rowOff+3*x+3], px[:])
		}
	}
}

// Stats reports compositor work.
type ComposeStats struct {
	Frames int
	Pixels int64
}

// Stats returns the counters.
func (c *Compositor) Stats() ComposeStats {
	return ComposeStats{Frames: c.composed, Pixels: c.pixels}
}
