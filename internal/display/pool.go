package display

import "sync"

// Pixel-buffer pool for bounded-lifetime interleaved frames: checksum
// verification and other scratch uses pack a codec frame, consume the
// bytes, and return the buffer. Frames handed to a FrameStore must NOT
// use pooled buffers — RFB/DRFB banks retain the slice across refreshes.

var bufPool sync.Pool

// GetBuf returns a pixel buffer with at least n bytes of capacity,
// sliced to length n. Contents are unspecified.
func GetBuf(n int) []byte {
	if v := bufPool.Get(); v != nil {
		if b := v.([]byte); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// PutBuf returns a buffer to the pool. The caller must not touch it
// afterwards.
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	bufPool.Put(b[:cap(b)]) //nolint:staticcheck // slice headers are fine to pool
}
