package display

import (
	"testing"

	"burstlink/internal/edp"
	"burstlink/internal/units"
)

func BenchmarkCompose(b *testing.B) {
	c := NewCompositor(units.Resolution{Width: 640, Height: 360})
	c.SetPlane(Plane{Name: "background", Z: 0, Rect: edp.Rect{W: 640, H: 360}, Fill: [3]byte{8, 8, 8}})
	c.SetPlane(Plane{Name: "video", Z: 1, Rect: edp.Rect{X: 80, Y: 45, W: 480, H: 270}, Fill: [3]byte{100, 100, 100}})
	c.SetPlane(Plane{Name: "cursor", Z: 2, Rect: edp.Rect{X: 300, Y: 160, W: 16, H: 16}, Fill: [3]byte{255, 255, 255}})
	b.SetBytes(int64(640 * 360 * 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compose(i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDRFBWriteFlip(b *testing.B) {
	d := NewDRFB(units.MB)
	f := Frame{Seq: 0, Data: make([]byte, 512*units.KB)}
	b.SetBytes(int64(512 * units.KB))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Seq = i
		d.Write(f)
		d.Flip()
	}
}
