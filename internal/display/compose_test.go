package display

import (
	"bytes"
	"testing"

	"burstlink/internal/edp"
	"burstlink/internal/units"
)

func smallRes() units.Resolution { return units.Resolution{Width: 32, Height: 16} }

func TestCompositorValidation(t *testing.T) {
	c := NewCompositor(smallRes())
	if _, err := c.Compose(0); err == nil {
		t.Fatal("compose with no planes should fail")
	}
	bad := Plane{Name: "x", Rect: edp.Rect{X: 30, Y: 0, W: 10, H: 4}}
	if err := c.SetPlane(bad); err == nil {
		t.Fatal("out-of-bounds plane should fail")
	}
	short := Plane{Name: "x", Rect: edp.Rect{W: 4, H: 4}, Data: []byte{1, 2, 3}}
	if err := c.SetPlane(short); err == nil {
		t.Fatal("short data should fail")
	}
}

func TestCompositionZOrder(t *testing.T) {
	c := NewCompositor(smallRes())
	// Background fills everything; video overlays the middle; cursor on
	// top of video.
	full := edp.Rect{W: 32, H: 16}
	if err := c.SetPlane(Plane{Name: "background", Z: 0, Rect: full, Fill: [3]byte{10, 10, 10}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPlane(Plane{Name: "video", Z: 1, Rect: edp.Rect{X: 8, Y: 4, W: 16, H: 8}, Fill: [3]byte{100, 100, 100}}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPlane(Plane{Name: "cursor", Z: 2, Rect: edp.Rect{X: 10, Y: 6, W: 2, H: 2}, Fill: [3]byte{255, 255, 255}}); err != nil {
		t.Fatal(err)
	}
	f, err := c.Compose(7)
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq != 7 {
		t.Fatalf("seq = %d", f.Seq)
	}
	px := func(x, y int) byte { return f.Data[(y*32+x)*3] }
	if px(0, 0) != 10 {
		t.Fatalf("background pixel = %d", px(0, 0))
	}
	if px(9, 5) != 100 {
		t.Fatalf("video pixel = %d", px(9, 5))
	}
	if px(10, 6) != 255 {
		t.Fatalf("cursor pixel = %d", px(10, 6))
	}
}

func TestCompositionZOrderIndependentOfInsertion(t *testing.T) {
	mk := func(order []string) Frame {
		c := NewCompositor(smallRes())
		planes := map[string]Plane{
			"background": {Name: "background", Z: 0, Rect: edp.Rect{W: 32, H: 16}, Fill: [3]byte{1, 1, 1}},
			"video":      {Name: "video", Z: 1, Rect: edp.Rect{X: 4, Y: 4, W: 8, H: 8}, Fill: [3]byte{2, 2, 2}},
			"gui":        {Name: "gui", Z: 2, Rect: edp.Rect{X: 6, Y: 6, W: 4, H: 4}, Fill: [3]byte{3, 3, 3}},
		}
		for _, n := range order {
			c.SetPlane(planes[n])
		}
		f, _ := c.Compose(0)
		return f
	}
	a := mk([]string{"background", "video", "gui"})
	b := mk([]string{"gui", "background", "video"})
	if !bytes.Equal(a.Data, b.Data) {
		t.Fatal("composition depends on insertion order, not Z")
	}
}

func TestTransparentCursor(t *testing.T) {
	c := NewCompositor(smallRes())
	c.SetPlane(Plane{Name: "background", Z: 0, Rect: edp.Rect{W: 32, H: 16}, Fill: [3]byte{10, 10, 10}})
	// A 2x1 cursor whose second pixel is the transparent key color.
	cur := []byte{255, 255, 255, 9, 9, 9}
	c.SetPlane(Plane{Name: "cursor", Z: 1, Rect: edp.Rect{X: 0, Y: 0, W: 2, H: 1},
		Data: cur, Fill: [3]byte{9, 9, 9}, Transparent: true})
	f, _ := c.Compose(0)
	if f.Data[0] != 255 {
		t.Fatal("opaque cursor pixel missing")
	}
	if f.Data[3] != 10 {
		t.Fatal("transparent pixel should show background")
	}
}

func TestVideoPlaneOnlySignal(t *testing.T) {
	c := NewCompositor(smallRes())
	c.SetPlane(Plane{Name: "video", Z: 0, Rect: edp.Rect{W: 32, H: 16}, Fill: [3]byte{1, 1, 1}})
	if !c.VideoPlaneOnly() {
		t.Fatal("single video plane should assert video_plane_only")
	}
	c.SetPlane(Plane{Name: "gui", Z: 1, Rect: edp.Rect{W: 8, H: 8}, Fill: [3]byte{2, 2, 2}})
	if c.VideoPlaneOnly() {
		t.Fatal("GUI plane should deassert video_plane_only")
	}
	if c.PlaneCount() != 2 {
		t.Fatalf("plane count = %d", c.PlaneCount())
	}
	c.RemovePlane("gui")
	if !c.VideoPlaneOnly() {
		t.Fatal("removing the GUI should restore video_plane_only")
	}
	c.RemovePlane("nope") // no-op
	if c.PlaneCount() != 1 {
		t.Fatal("unexpected plane count after removing unknown name")
	}
}

func TestSetPlaneReplacesByName(t *testing.T) {
	c := NewCompositor(smallRes())
	c.SetPlane(Plane{Name: "video", Rect: edp.Rect{W: 32, H: 16}, Fill: [3]byte{1, 1, 1}})
	c.SetPlane(Plane{Name: "video", Rect: edp.Rect{W: 32, H: 16}, Fill: [3]byte{5, 5, 5}})
	if c.PlaneCount() != 1 {
		t.Fatalf("plane count = %d after replace", c.PlaneCount())
	}
	f, _ := c.Compose(0)
	if f.Data[0] != 5 {
		t.Fatal("replacement did not take effect")
	}
}

func TestComposeStats(t *testing.T) {
	c := NewCompositor(smallRes())
	c.SetPlane(Plane{Name: "video", Rect: edp.Rect{W: 32, H: 16}, Fill: [3]byte{1, 1, 1}})
	c.Compose(0)
	c.Compose(1)
	st := c.Stats()
	if st.Frames != 2 || st.Pixels != 2*32*16 {
		t.Fatalf("stats = %+v", st)
	}
}
