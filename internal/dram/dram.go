// Package dram models the platform's main memory: its power states
// (self-refresh, CKE-Low fast power-down, CKE-High active), the split of
// power into background and bandwidth-proportional operating components
// exactly as the paper's model does (§5.2), sustained-bandwidth transfer
// timing, and a frame-buffer allocator used by the display pipeline.
package dram

import (
	"fmt"
	"time"

	"burstlink/internal/units"
)

// PowerState is a DRAM device power state (§5.2). In the evaluated
// platform the DRAM state is correlated with the package C-state: CKE-High
// in C0/C2 and self-refresh in C3 and deeper (Table 1).
type PowerState int

// DRAM power states, deep to shallow.
const (
	SelfRefresh PowerState = iota // clock stopped, device refreshes itself
	CKELow                        // fast power-down, quick re-activation
	CKEHigh                       // active or active-idle
)

var powerStateNames = [...]string{"self-refresh", "CKE-low", "CKE-high"}

// String returns the state name.
func (s PowerState) String() string {
	if s < 0 || int(s) >= len(powerStateNames) {
		return fmt.Sprintf("PowerState(%d)", int(s))
	}
	return powerStateNames[s]
}

// Config describes a DRAM subsystem. Defaults model the baseline system's
// LPDDR3-1866 dual-channel 8 GB configuration (Table 3).
type Config struct {
	Capacity units.ByteSize
	// SustainedBandwidth is the achievable (not theoretical-peak)
	// bandwidth for streaming transfers.
	SustainedBandwidth units.DataRate

	// Background power per state, independent of traffic.
	SelfRefreshPower units.Power
	CKELowPower      units.Power
	CKEHighPower     units.Power

	// Operating power per unit bandwidth: the paper extrapolates mW per
	// 1 GB/s of reads and of writes from a memory benchmark sweep (§5.2).
	ReadPowerPerGBps  units.Power
	WritePowerPerGBps units.Power
}

// DefaultLPDDR3 returns the baseline system's memory configuration
// (LPDDR3-1866, 8 GB, dual-channel; Table 3). Power coefficients follow
// the measurement methodology of §5.2 and are the values the composed
// model is calibrated with (see internal/power).
func DefaultLPDDR3() Config {
	return Config{
		Capacity:           8 * units.GiB,
		SustainedBandwidth: units.GBps(14.9), // ~50% of 29.8 GB/s peak
		SelfRefreshPower:   45 * units.MilliWatt,
		CKELowPower:        140 * units.MilliWatt,
		CKEHighPower:       520 * units.MilliWatt,
		ReadPowerPerGBps:   110 * units.MilliWatt,
		WritePowerPerGBps:  125 * units.MilliWatt,
	}
}

// BackgroundPower returns the traffic-independent power in state s.
func (c Config) BackgroundPower(s PowerState) units.Power {
	switch s {
	case SelfRefresh:
		return c.SelfRefreshPower
	case CKELow:
		return c.CKELowPower
	default:
		return c.CKEHighPower
	}
}

// OperatingPower returns the bandwidth-proportional power for the given
// read and write rates.
func (c Config) OperatingPower(read, write units.DataRate) units.Power {
	const gbps = 8e9 // bits/s per GB/s
	return units.Power(float64(c.ReadPowerPerGBps)*float64(read)/gbps +
		float64(c.WritePowerPerGBps)*float64(write)/gbps)
}

// Device is a DRAM subsystem instance with traffic accounting.
type Device struct {
	cfg   Config
	state PowerState

	reads, writes units.ByteSize
	inState       map[PowerState]time.Duration
	lastChange    time.Duration
	alloc         allocator
}

// NewDevice builds a device in CKE-High.
func NewDevice(cfg Config) *Device {
	return &Device{
		cfg:     cfg,
		state:   CKEHigh,
		inState: make(map[PowerState]time.Duration),
		alloc:   allocator{capacity: cfg.Capacity},
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// State returns the current power state.
func (d *Device) State() PowerState { return d.state }

// SetState transitions the device at virtual time now, accruing time spent
// in the previous state.
func (d *Device) SetState(s PowerState, now time.Duration) {
	if now > d.lastChange {
		d.inState[d.state] += now - d.lastChange
		d.lastChange = now
	}
	d.state = s
}

// TimeIn returns accumulated time in state s (up to the last SetState).
func (d *Device) TimeIn(s PowerState) time.Duration { return d.inState[s] }

// Read accounts n bytes of read traffic and returns the transfer duration
// at sustained bandwidth. Reading while in self-refresh panics: the model
// requires the memory controller to wake the device first, and a violation
// is a pipeline-scheduling bug.
func (d *Device) Read(n units.ByteSize) time.Duration {
	d.requireAwake("read")
	d.reads += n
	return d.cfg.SustainedBandwidth.TimeFor(n)
}

// Write accounts n bytes of write traffic and returns the transfer
// duration at sustained bandwidth.
func (d *Device) Write(n units.ByteSize) time.Duration {
	d.requireAwake("write")
	d.writes += n
	return d.cfg.SustainedBandwidth.TimeFor(n)
}

func (d *Device) requireAwake(op string) {
	if d.state == SelfRefresh {
		panic("dram: " + op + " while in self-refresh")
	}
}

// Traffic returns cumulative read and write byte counts.
func (d *Device) Traffic() (read, write units.ByteSize) { return d.reads, d.writes }

// ResetTraffic zeroes the traffic counters (between experiment runs).
func (d *Device) ResetTraffic() { d.reads, d.writes = 0, 0 }
