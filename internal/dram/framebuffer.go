package dram

import (
	"fmt"

	"burstlink/internal/units"
)

// Buffer is a named allocation in DRAM, e.g. a plane's frame buffer or the
// encoded-stream staging buffer (❶/❸ in Fig 2).
type Buffer struct {
	Name string
	Size units.ByteSize
	// Offset is the byte offset of the allocation inside the device; the
	// simulator uses it only for identity and accounting.
	Offset units.ByteSize

	freed bool
}

// allocator is a trivial bump allocator with free-list-less accounting:
// buffers are few (a handful of planes) and long-lived, so fragmentation
// handling would be dead weight.
type allocator struct {
	capacity units.ByteSize
	used     units.ByteSize
	next     units.ByteSize
	buffers  []*Buffer
}

// Allocate reserves a buffer of the given size in DRAM.
func (d *Device) Allocate(name string, size units.ByteSize) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("dram: allocate %q: non-positive size %v", name, size)
	}
	if d.alloc.used+size > d.alloc.capacity {
		return nil, fmt.Errorf("dram: allocate %q: %v exceeds free capacity %v",
			name, size, d.alloc.capacity-d.alloc.used)
	}
	b := &Buffer{Name: name, Size: size, Offset: d.alloc.next}
	d.alloc.used += size
	d.alloc.next += size
	d.alloc.buffers = append(d.alloc.buffers, b)
	return b, nil
}

// Free releases a buffer. Double-free is an error.
func (d *Device) Free(b *Buffer) error {
	if b == nil || b.freed {
		return fmt.Errorf("dram: free: buffer already freed or nil")
	}
	b.freed = true
	d.alloc.used -= b.Size
	return nil
}

// Used returns the currently allocated byte count.
func (d *Device) Used() units.ByteSize { return d.alloc.used }

// DoubleBuffer is the conventional host-DRAM double frame buffer: the
// display controller scans the front buffer while the decoder writes the
// back buffer, swapping on frame completion. BurstLink's DRFB moves this
// structure into the panel (§4.1); this type models the host-side original.
type DoubleBuffer struct {
	front, back *Buffer
	swaps       int
}

// NewDoubleBuffer allocates two frame buffers of frameSize in DRAM.
func NewDoubleBuffer(d *Device, name string, frameSize units.ByteSize) (*DoubleBuffer, error) {
	f, err := d.Allocate(name+".front", frameSize)
	if err != nil {
		return nil, err
	}
	b, err := d.Allocate(name+".back", frameSize)
	if err != nil {
		return nil, err
	}
	return &DoubleBuffer{front: f, back: b}, nil
}

// Front returns the buffer currently scanned out.
func (db *DoubleBuffer) Front() *Buffer { return db.front }

// Back returns the buffer currently written by the producer.
func (db *DoubleBuffer) Back() *Buffer { return db.back }

// Swap exchanges front and back, publishing the just-written frame.
func (db *DoubleBuffer) Swap() {
	db.front, db.back = db.back, db.front
	db.swaps++
}

// Swaps returns how many frames have been published.
func (db *DoubleBuffer) Swaps() int { return db.swaps }
