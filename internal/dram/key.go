package dram

import "burstlink/internal/memo"

// AppendKey renders the memory configuration into a canonical segment
// key (all fields: the power coefficients feed per-phase DRAM operating
// power, the capacity and bandwidth feed the functional engine).
func (c Config) AppendKey(w *memo.KeyWriter) {
	w.Uint("capacity", uint64(c.Capacity))
	w.Float("bw", float64(c.SustainedBandwidth))
	w.Float("selfrefresh", float64(c.SelfRefreshPower))
	w.Float("ckelow", float64(c.CKELowPower))
	w.Float("ckehigh", float64(c.CKEHighPower))
	w.Float("readgbps", float64(c.ReadPowerPerGBps))
	w.Float("writegbps", float64(c.WritePowerPerGBps))
}
