package dram

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"burstlink/internal/units"
)

func TestDefaultConfigSanity(t *testing.T) {
	cfg := DefaultLPDDR3()
	if cfg.Capacity != 8*units.GiB {
		t.Fatalf("capacity = %v, want 8 GiB (Table 3)", cfg.Capacity)
	}
	// Background power must increase with shallower states.
	if !(cfg.SelfRefreshPower < cfg.CKELowPower && cfg.CKELowPower < cfg.CKEHighPower) {
		t.Fatal("background power not monotone in state depth")
	}
}

func TestBackgroundPower(t *testing.T) {
	cfg := DefaultLPDDR3()
	if cfg.BackgroundPower(SelfRefresh) != cfg.SelfRefreshPower {
		t.Fatal("self-refresh background wrong")
	}
	if cfg.BackgroundPower(CKELow) != cfg.CKELowPower {
		t.Fatal("CKE-low background wrong")
	}
	if cfg.BackgroundPower(CKEHigh) != cfg.CKEHighPower {
		t.Fatal("CKE-high background wrong")
	}
}

func TestOperatingPowerLinearInBandwidth(t *testing.T) {
	cfg := DefaultLPDDR3()
	p1 := cfg.OperatingPower(units.GBps(1), 0)
	if math.Abs(float64(p1-cfg.ReadPowerPerGBps)) > 1e-9 {
		t.Fatalf("1 GB/s read = %v, want %v", p1, cfg.ReadPowerPerGBps)
	}
	p2 := cfg.OperatingPower(units.GBps(2), units.GBps(3))
	want := 2*float64(cfg.ReadPowerPerGBps) + 3*float64(cfg.WritePowerPerGBps)
	if math.Abs(float64(p2)-want) > 1e-9 {
		t.Fatalf("mixed = %v, want %v", p2, want)
	}
}

func TestOperatingPowerAdditive(t *testing.T) {
	cfg := DefaultLPDDR3()
	f := func(r1, r2, w1, w2 uint16) bool {
		a := cfg.OperatingPower(units.DataRate(r1)*units.Mbps, units.DataRate(w1)*units.Mbps)
		b := cfg.OperatingPower(units.DataRate(r2)*units.Mbps, units.DataRate(w2)*units.Mbps)
		both := cfg.OperatingPower(units.DataRate(int(r1)+int(r2))*units.Mbps, units.DataRate(int(w1)+int(w2))*units.Mbps)
		return math.Abs(float64(a+b-both)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteAccounting(t *testing.T) {
	d := NewDevice(DefaultLPDDR3())
	dur := d.Read(149 * units.MB)
	// 149 MB at 14.9 GB/s = 10 ms.
	if dur < 9900*time.Microsecond || dur > 10100*time.Microsecond {
		t.Fatalf("read duration = %v, want ~10ms", dur)
	}
	d.Write(50 * units.MB)
	r, w := d.Traffic()
	if r != 149*units.MB || w != 50*units.MB {
		t.Fatalf("traffic = %v/%v", r, w)
	}
	d.ResetTraffic()
	r, w = d.Traffic()
	if r != 0 || w != 0 {
		t.Fatal("reset did not clear traffic")
	}
}

func TestAccessInSelfRefreshPanics(t *testing.T) {
	d := NewDevice(DefaultLPDDR3())
	d.SetState(SelfRefresh, time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("read in self-refresh should panic")
		}
	}()
	d.Read(units.KB)
}

func TestStateTimeAccrual(t *testing.T) {
	d := NewDevice(DefaultLPDDR3())
	d.SetState(SelfRefresh, 10*time.Millisecond) // 10ms in CKEHigh
	d.SetState(CKEHigh, 25*time.Millisecond)     // 15ms in SR
	d.SetState(CKEHigh, 30*time.Millisecond)     // 5ms more in CKEHigh
	if got := d.TimeIn(CKEHigh); got != 15*time.Millisecond {
		t.Fatalf("TimeIn(CKEHigh) = %v, want 15ms", got)
	}
	if got := d.TimeIn(SelfRefresh); got != 15*time.Millisecond {
		t.Fatalf("TimeIn(SelfRefresh) = %v, want 15ms", got)
	}
}

func TestAllocate(t *testing.T) {
	d := NewDevice(DefaultLPDDR3())
	fb, err := d.Allocate("video.fb", units.R4K.FrameSize(24))
	if err != nil {
		t.Fatal(err)
	}
	if fb.Size != units.R4K.FrameSize(24) || fb.Name != "video.fb" {
		t.Fatalf("buffer = %+v", fb)
	}
	if d.Used() != fb.Size {
		t.Fatalf("used = %v", d.Used())
	}
	if err := d.Free(fb); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 0 {
		t.Fatal("free did not reclaim")
	}
	if err := d.Free(fb); err == nil {
		t.Fatal("double free should error")
	}
}

func TestAllocateErrors(t *testing.T) {
	d := NewDevice(Config{Capacity: units.MB})
	if _, err := d.Allocate("big", 2*units.MB); err == nil {
		t.Fatal("over-capacity allocation should fail")
	}
	if _, err := d.Allocate("zero", 0); err == nil {
		t.Fatal("zero-size allocation should fail")
	}
}

func TestAllocateOffsetsDisjoint(t *testing.T) {
	d := NewDevice(DefaultLPDDR3())
	a, _ := d.Allocate("a", units.MB)
	b, _ := d.Allocate("b", units.MB)
	if a.Offset+a.Size > b.Offset {
		t.Fatalf("allocations overlap: a=%+v b=%+v", a, b)
	}
}

func TestDoubleBufferSwap(t *testing.T) {
	d := NewDevice(DefaultLPDDR3())
	db, err := NewDoubleBuffer(d, "video", units.FHD.FrameSize(24))
	if err != nil {
		t.Fatal(err)
	}
	f0, b0 := db.Front(), db.Back()
	if f0 == b0 {
		t.Fatal("front and back must be distinct")
	}
	db.Swap()
	if db.Front() != b0 || db.Back() != f0 {
		t.Fatal("swap did not exchange buffers")
	}
	if db.Swaps() != 1 {
		t.Fatalf("swaps = %d", db.Swaps())
	}
	// Two frame buffers allocated.
	if d.Used() != 2*units.FHD.FrameSize(24) {
		t.Fatalf("used = %v", d.Used())
	}
}

func TestDoubleBufferAllocFailure(t *testing.T) {
	d := NewDevice(Config{Capacity: units.FHD.FrameSize(24)}) // room for one only
	if _, err := NewDoubleBuffer(d, "video", units.FHD.FrameSize(24)); err == nil {
		t.Fatal("expected allocation failure for second buffer")
	}
}

func TestPowerStateString(t *testing.T) {
	if SelfRefresh.String() != "self-refresh" || CKEHigh.String() != "CKE-high" {
		t.Fatal("state names wrong")
	}
	if PowerState(9).String() != "PowerState(9)" {
		t.Fatal("out-of-range name wrong")
	}
}
