package workload

import (
	"testing"
	"time"

	"burstlink/internal/units"
)

func TestBatteryLife(t *testing.T) {
	b := SurfaceProBattery()
	// 38.2 Wh at 2162 mW ≈ 17.7 hours.
	got := b.Life(2162 * units.MilliWatt)
	if got < 17*time.Hour || got > 18*time.Hour {
		t.Fatalf("life = %v, want ~17.7h", got)
	}
	if b.Life(0) != 0 {
		t.Fatal("zero power should return zero life")
	}
	// Halving power doubles life.
	if d := b.Life(1081 * units.MilliWatt); d < 2*got-time.Minute || d > 2*got+time.Minute {
		t.Fatalf("half power life = %v, want ~2x %v", d, got)
	}
}

func TestLifeString(t *testing.T) {
	if got := LifeString(17*time.Hour + 42*time.Minute); got != "17h42m" {
		t.Fatalf("got %q", got)
	}
	if got := LifeString(9*time.Hour + 5*time.Minute); got != "9h05m" {
		t.Fatalf("got %q", got)
	}
}
