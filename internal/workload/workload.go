// Package workload builds the evaluation scenarios of §5.1 and §6: planar
// streaming at the paper's resolutions and frame rates, the five 360° VR
// streaming workloads, local high-rate video playback (Fig 14a), and the
// four non-video frame-based mobile workloads of Fig 14(b) — video
// capture, video conferencing, casual gaming, and MobileMark — together
// with their conventional and Frame-Bursting display schedulers.
package workload

import (
	"fmt"
	"time"

	"burstlink/internal/pipeline"
	"burstlink/internal/soc"
	"burstlink/internal/trace"
	"burstlink/internal/units"
	"burstlink/internal/vr"
)

// PlanarResolutions are the display resolutions of Figs 1/9/10/12/13.
func PlanarResolutions() []units.Resolution {
	return []units.Resolution{units.FHD, units.QHD, units.R4K, units.R5K}
}

// VRScenario builds the streaming scenario for one of the five VR
// workloads at the given per-eye panel resolution (Fig 11). The display
// drives both eyes (2× per-eye width); the source is a 4K equirectangular
// stream; head-motion intensity (measured from the workload's synthetic
// trajectory) scales the GPU projection effort.
func VRScenario(w vr.Workload, perEye units.Resolution) (pipeline.Scenario, error) {
	tr, err := w.Trace()
	if err != nil {
		return pipeline.Scenario{}, err
	}
	intensity := vr.MotionIntensity(tr, 30)
	return pipeline.Scenario{
		Res:          units.Resolution{Width: 2 * perEye.Width, Height: perEye.Height},
		Refresh:      60,
		FPS:          60, // HMDs refresh every frame
		BPP:          24,
		VR:           true,
		VRSource:     units.R4K,
		MotionFactor: 1 + intensity,
	}, nil
}

// LocalPlayback builds the Fig 14(a) high-rate local playback scenarios:
// 4K@144 Hz, 4K@120 Hz, and 5K@60 Hz, with the video frame rate matching
// the refresh rate.
func LocalPlayback() []pipeline.Scenario {
	return []pipeline.Scenario{
		pipeline.Planar(units.R4K, 144, 144),
		pipeline.Planar(units.R4K, 120, 120),
		pipeline.Planar(units.R5K, 60, 60),
	}
}

// UIWorkload is a non-video frame-based workload (Fig 14b): it renders a
// single (graphics) plane at some update rate, with only part of the
// screen changing per update.
type UIWorkload struct {
	Name string
	// UpdateFPS is how many frames per second actually change.
	UpdateFPS units.FPS
	// RenderTime is the CPU+GPU time to produce one updated frame.
	RenderTime time.Duration
	// ActiveFraction is the fraction of refresh windows with an update
	// (browsing and office workloads idle between interactions).
	ActiveFraction float64
}

// The four Fig 14(b) workloads plus web browsing (Fig 4's first half).
// Parameters follow the workloads' published characterizations: capture
// and conferencing update every window; gaming ~45 FPS; MobileMark and
// browsing are bursty with long idle gaps.
func VideoCapture() UIWorkload {
	return UIWorkload{Name: "Video Capturing", UpdateFPS: 30, RenderTime: 2 * time.Millisecond, ActiveFraction: 1}
}

// VideoConferencing returns the video-chat workload.
func VideoConferencing() UIWorkload {
	return UIWorkload{Name: "Video Conferencing", UpdateFPS: 30, RenderTime: 2500 * time.Microsecond, ActiveFraction: 1}
}

// CasualGaming returns the casual-gaming workload.
func CasualGaming() UIWorkload {
	return UIWorkload{Name: "Casual Games", UpdateFPS: 30, RenderTime: 3 * time.Millisecond, ActiveFraction: 0.75}
}

// MobileMark returns the office-productivity benchmark workload.
func MobileMark() UIWorkload {
	return UIWorkload{Name: "MobileMark", UpdateFPS: 15, RenderTime: 4 * time.Millisecond, ActiveFraction: 0.5}
}

// WebBrowsing returns the browsing workload used in Fig 4's first phase.
func WebBrowsing() UIWorkload {
	return UIWorkload{Name: "Web Browsing", UpdateFPS: 10, RenderTime: 5 * time.Millisecond, ActiveFraction: 0.4}
}

// Fig14bWorkloads lists the four workloads of Fig 14(b).
func Fig14bWorkloads() []UIWorkload {
	return []UIWorkload{VideoCapture(), VideoConferencing(), CasualGaming(), MobileMark()}
}

// validate checks a UI workload against a panel refresh rate.
func (w UIWorkload) validate(refresh units.RefreshRate) error {
	if w.UpdateFPS <= 0 || w.UpdateFPS > units.FPS(refresh) {
		return fmt.Errorf("workload %q: update rate %d vs refresh %d", w.Name, w.UpdateFPS, refresh)
	}
	if w.ActiveFraction <= 0 || w.ActiveFraction > 1 {
		return fmt.Errorf("workload %q: active fraction %v", w.Name, w.ActiveFraction)
	}
	return nil
}

// idleWindowsPerUpdate returns the number of refresh windows between
// consecutive frame updates, folding the duty cycle in: a workload active
// half the time at 15 updates/s effectively updates once per 8 windows on
// a 60 Hz panel.
func idleWindowsPerUpdate(w UIWorkload, refresh units.RefreshRate) float64 {
	return float64(refresh)/(float64(w.UpdateFPS)*w.ActiveFraction) - 1
}

// uiFetchTime is the DC's fetch time for a UI plane. The DC clocks with
// the panel's pixel demand (it must stream the whole frame each window),
// so the fetch rate scales with display pixels at a nominal 30 Hz update
// anchor rather than with the workload's update rate.
func uiFetchTime(p pipeline.Platform, res units.Resolution) time.Duration {
	return p.FetchTime(res, 24, 30)
}

// psrEngageWindows is how many idle windows the conventional stack keeps
// re-streaming before its PSR idle-detection engages.
const psrEngageWindows = 2.0

// UIConventional produces one update period of the workload on the
// conventional pipeline (§6.5): render in C0, then the DC re-fetches the
// frame buffer from DRAM and streams it to the panel **every refresh
// window** — without dirty-frame tracking the conventional single-plane
// path keeps the DC, eDP, and DRAM path busy whether or not anything
// changed, which is precisely the waste Frame Bursting removes.
func UIConventional(p pipeline.Platform, w UIWorkload, res units.Resolution, refresh units.RefreshRate) (trace.Timeline, error) {
	if err := w.validate(refresh); err != nil {
		return trace.Timeline{}, err
	}
	window := refresh.Window()
	frame := res.FrameSize(24)
	tFetch := uiFetchTime(p, res)
	tC0 := p.OrchTime + w.RenderTime
	if tC0+tFetch > window {
		return trace.Timeline{}, pipeline.ErrUnderrun{Scenario: pipeline.Planar(res, refresh, w.UpdateFPS), Need: tC0 + tFetch, Have: window}
	}

	var tl trace.Timeline
	// Update window: render + fetch + drain.
	tl.Add(trace.Phase{State: soc.C0, Duration: tC0, DRAMWrite: frame, Label: "render"})
	tl.Add(trace.Phase{State: soc.C2, Duration: tFetch, DRAMRead: frame, Label: "dc fetch"})
	tl.AddState(soc.C8, window-tC0-tFetch, "dc drain")
	// Idle windows: until PSR idle-detection engages, the DC keeps
	// re-fetching and streaming the unchanged frame each window; after
	// that the panel self-refreshes and the host parks in C8.
	idle := idleWindowsPerUpdate(w, refresh)
	stream := idle
	if stream > psrEngageWindows {
		stream = psrEngageWindows
	}
	if stream > 0 {
		tl.Add(trace.Phase{
			State: soc.C2, Duration: time.Duration(stream * float64(tFetch)),
			DRAMRead: units.ByteSize(stream * float64(frame)), Label: "dc refetch",
		})
		tl.AddState(soc.C8, time.Duration(stream*float64(window-tFetch)), "dc drain")
	}
	if psr := idle - stream; psr > 0 {
		tl.AddState(soc.C8, time.Duration(psr*float64(window)), "psr")
	}
	return tl, nil
}

// UIBurst produces the same workload with Frame Bursting (§6.5): on an
// update the DC bursts the frame buffer into the DRFB at maximum link
// bandwidth, then the package drops to C9; idle windows are pure C9
// because the panel self-refreshes from the DRFB.
func UIBurst(p pipeline.Platform, w UIWorkload, res units.Resolution, refresh units.RefreshRate) (trace.Timeline, error) {
	if err := w.validate(refresh); err != nil {
		return trace.Timeline{}, err
	}
	window := refresh.Window()
	frame := res.FrameSize(24)
	tXfer := uiFetchTime(p, res)
	if tLink := p.BurstTime(res, 24); tLink > tXfer {
		tXfer = tLink
	}
	tC0 := p.OrchTimeBL + w.RenderTime
	if tC0+tXfer > window {
		return trace.Timeline{}, pipeline.ErrUnderrun{Scenario: pipeline.Planar(res, refresh, w.UpdateFPS), Need: tC0 + tXfer, Have: window}
	}

	var tl trace.Timeline
	tl.Add(trace.Phase{State: soc.C0, Duration: tC0, DRAMWrite: frame, Label: "render"})
	tl.Add(trace.Phase{State: soc.C2, Duration: tXfer, DRAMRead: frame, EDPBurst: true, Label: "burst→drfb"})
	tl.AddState(soc.C9, window-tC0-tXfer, "deep idle")
	idle := idleWindowsPerUpdate(w, refresh)
	tl.AddState(soc.C9, time.Duration(idle*float64(window)), "psr(drfb)")
	return tl, nil
}

// MixedSequence builds Fig 4's scenario: a stretch of web browsing
// followed by FHD 60FPS video streaming, both on a 60 Hz panel. It
// returns the two segment timelines scaled to the given durations.
func MixedSequence(p pipeline.Platform, browse, stream time.Duration) (trace.Timeline, error) {
	browseTl, err := UIConventional(p, WebBrowsing(), units.FHD, 60)
	if err != nil {
		return trace.Timeline{}, err
	}
	video, err := pipeline.Conventional(p, pipeline.Planar(units.FHD, 60, 60))
	if err != nil {
		return trace.Timeline{}, err
	}
	var out trace.Timeline
	out.Append(browseTl.Repeat(int(browse / browseTl.Total())))
	out.Append(video.Repeat(int(stream / video.Total())))
	return out, nil
}
