package workload

import (
	"fmt"
	"time"

	"burstlink/internal/units"
)

// Battery converts average system power into battery life — the paper's
// motivating quantity (§1: high-refresh displays "negatively impact the
// battery life of a mobile device").
type Battery struct {
	// CapacityMilliWattHours is the usable battery energy.
	CapacityMilliWattHours float64
}

// SurfaceProBattery returns the evaluated tablet's battery (Microsoft
// Surface Pro class, ~38.2 Wh).
func SurfaceProBattery() Battery { return Battery{CapacityMilliWattHours: 38200} }

// Life returns how long the battery sustains the given average power.
func (b Battery) Life(avg units.Power) time.Duration {
	if avg <= 0 {
		return 0
	}
	hours := b.CapacityMilliWattHours / float64(avg)
	return time.Duration(hours * float64(time.Hour))
}

// LifeString formats a duration as "17h42m".
func LifeString(d time.Duration) string {
	h := int(d / time.Hour)
	m := int(d/time.Minute) % 60
	return fmt.Sprintf("%dh%02dm", h, m)
}
