package workload

import (
	"testing"
	"time"

	"burstlink/internal/pipeline"
	"burstlink/internal/power"
	"burstlink/internal/soc"
	"burstlink/internal/units"
	"burstlink/internal/vr"
)

func TestVRScenarioConstruction(t *testing.T) {
	s, err := VRScenario(vr.Rhino, units.VR1080)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.VR || s.VRSource != units.R4K {
		t.Fatalf("scenario = %+v", s)
	}
	if s.Res.Width != 2*1080 || s.Res.Height != 1200 {
		t.Fatalf("both-eye res = %v", s.Res)
	}
	if s.MotionFactor <= 1 {
		t.Fatalf("motion factor = %v, want > 1", s.MotionFactor)
	}
	if _, err := VRScenario(vr.Workload("bogus"), units.VR1080); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestVRMotionFactorsDiffer(t *testing.T) {
	calm, _ := VRScenario(vr.Timelapse, units.VR1080)
	wild, _ := VRScenario(vr.Rollercoaster, units.VR1080)
	if wild.MotionFactor <= calm.MotionFactor {
		t.Fatalf("Rollercoaster %v should exceed Timelapse %v", wild.MotionFactor, calm.MotionFactor)
	}
}

func TestLocalPlaybackScenariosValid(t *testing.T) {
	p := pipeline.DefaultPlatform()
	for _, s := range LocalPlayback() {
		if err := s.Validate(); err != nil {
			t.Fatalf("%v: %v", s.Res, err)
		}
		if _, err := pipeline.Conventional(p, s); err != nil {
			t.Fatalf("%v@%d: baseline underruns: %v", s.Res, s.Refresh, err)
		}
	}
}

func TestUIWorkloadTimelines(t *testing.T) {
	p := pipeline.DefaultPlatform()
	for _, w := range append(Fig14bWorkloads(), WebBrowsing()) {
		for _, res := range []units.Resolution{units.FHD, units.QHD, units.R4K} {
			conv, err := UIConventional(p, w, res, 60)
			if err != nil {
				t.Fatalf("%s %v conv: %v", w.Name, res, err)
			}
			burst, err := UIBurst(p, w, res, 60)
			if err != nil {
				t.Fatalf("%s %v burst: %v", w.Name, res, err)
			}
			// Same wall-time span (same update period and duty cycle).
			if d := conv.Total() - burst.Total(); d < -time.Millisecond || d > time.Millisecond {
				t.Errorf("%s %v: spans differ: %v vs %v", w.Name, res, conv.Total(), burst.Total())
			}
			// Bursting reaches C9; conventional caps at C8.
			if burst.TimeIn(soc.C9) == 0 {
				t.Errorf("%s %v: burst never reached C9", w.Name, res)
			}
			if conv.DeepestState() != soc.C8 {
				t.Errorf("%s %v: conventional deepest = %v", w.Name, res, conv.DeepestState())
			}
		}
	}
}

func TestFig14bReductions(t *testing.T) {
	// Fig 14(b): Frame Bursting cuts the four workloads' energy by
	// roughly 27-30% (we accept 15-45% and require positive monotone
	// behaviour in resolution to be checked by the experiment driver).
	p := pipeline.DefaultPlatform()
	m := power.Default()
	for _, w := range Fig14bWorkloads() {
		conv, _ := UIConventional(p, w, units.FHD, 60)
		burst, _ := UIBurst(p, w, units.FHD, 60)
		load := power.Load{Demand: 1, PanelRatio: 1}
		red := 1 - float64(m.Evaluate(burst, load).Average)/float64(m.Evaluate(conv, load).Average)
		if red < 0.10 || red > 0.45 {
			t.Errorf("%s: reduction = %.1f%%, want ~27-30%%", w.Name, red*100)
		}
	}
}

func TestUIWorkloadValidation(t *testing.T) {
	p := pipeline.DefaultPlatform()
	bad := UIWorkload{Name: "bad", UpdateFPS: 120, ActiveFraction: 1}
	if _, err := UIConventional(p, bad, units.FHD, 60); err == nil {
		t.Fatal("update rate above refresh should fail")
	}
	bad = UIWorkload{Name: "bad", UpdateFPS: 30, ActiveFraction: 0}
	if _, err := UIBurst(p, bad, units.FHD, 60); err == nil {
		t.Fatal("zero active fraction should fail")
	}
}

func TestMixedSequence(t *testing.T) {
	p := pipeline.DefaultPlatform()
	tl, err := MixedSequence(p, 2*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Total() < 3*time.Second {
		t.Fatalf("mixed sequence too short: %v", tl.Total())
	}
	// Streaming phase raises C0 share; both C0 and C8 must appear.
	res := tl.Residency()
	if res[soc.C0] <= 0 || res[soc.C8] <= 0 {
		t.Fatalf("residency = %v", tl.String())
	}
}

func TestPlanarResolutionList(t *testing.T) {
	rs := PlanarResolutions()
	if len(rs) != 4 || rs[0] != units.FHD || rs[3] != units.R5K {
		t.Fatalf("resolutions = %v", rs)
	}
}
