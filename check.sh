#!/bin/sh
# Repository check: tier-1 build+test, race detector, vet, formatting
# (simplify mode), domain static analysis (blklint), fuzz smoke, and a
# fleet bench smoke (scratch vs delta bit-identity).
# See README.md "Testing & verification" and "Static analysis".
set -e

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -s -l ."
fmt=$(gofmt -s -l .)
if [ -n "$fmt" ]; then
    echo "gofmt -s: these files need formatting/simplification:" >&2
    echo "$fmt" >&2
    exit 1
fi

# The fact cache is keyed on package contents and the analyzer set, but
# a change to blklint's own implementation (same analyzer names and
# docs, different behavior) is invisible to those keys. Hash the tool's
# sources and drop the cache whenever they change, so a stale cache can
# never mask a finding a newer analyzer would report.
toolhash=$(find internal/lint cmd/blklint -name '*.go' -not -path '*/testdata/*' -print | LC_ALL=C sort \
    | xargs cat | git hash-object --stdin)
if [ -d .blklint-cache ] && [ "$(cat .blklint-cache/.toolhash 2>/dev/null)" != "$toolhash" ]; then
    echo "== blklint sources changed; dropping .blklint-cache"
    rm -rf .blklint-cache
fi

# Locally, lint only what changed since the merge base with origin/main
# (fast inner loop); CI always runs the full module so nothing hides
# behind an old ref. If origin/main is absent entirely (fresh clone with
# no remote), fall back to the full run. But if the ref exists and no
# merge base can be computed (detached head, unrelated or shallow
# history), fail loudly: diffing against a non-ancestor produces a bogus
# changed-set, and a silently-empty one would pass lint on code that was
# never analyzed.
if [ -z "$CI" ] && git rev-parse --verify --quiet origin/main >/dev/null 2>&1; then
    if ! base=$(git merge-base HEAD origin/main 2>/dev/null); then
        echo "check.sh: origin/main exists but has no merge base with HEAD" >&2
        echo "  (detached head, shallow clone, or unrelated history)" >&2
        echo "  fix the checkout (git fetch --unshallow / reattach) or run CI=1 ./check.sh for a full-module lint" >&2
        exit 1
    fi
    echo "== blklint -changed $base (merge base with origin/main)"
    go run ./cmd/blklint -changed "$base"
else
    echo "== blklint ./..."
    go run ./cmd/blklint ./...
fi

# Warm-cache smoke: prime the fact cache, then re-run and require that
# the second pass actually served packages from it. This is the one
# place the incremental path is exercised end-to-end on every check, so
# a cache that silently stopped warming fails here, not in a slow CI.
echo "== blklint fact cache smoke"
go run ./cmd/blklint -cache ./...
mkdir -p .blklint-cache
printf '%s\n' "$toolhash" > .blklint-cache/.toolhash
cached=$(go run ./cmd/blklint -cache ./... 2>&1 >/dev/null \
    | sed -n 's/^blklint: fact cache: \([0-9]*\)\/.*$/\1/p')
if [ -z "$cached" ] || [ "$cached" -eq 0 ]; then
    echo "blklint fact cache: warm run served ${cached:-no} packages from cache; cache is not warming" >&2
    exit 1
fi
echo "warm run served $cached packages from cache"

# Suppression budget: every //lint:ignore is a debt with a written
# reason; the count may only change deliberately, with this number.
echo "== lint suppression budget"
budget=2
count=$(grep -rn --include='*.go' -E '^[[:space:]]*//lint:ignore ' . --exclude-dir=testdata --exclude='*_test.go' | wc -l | tr -d ' ')
if [ "$count" -ne "$budget" ]; then
    echo "lint suppressions: found $count //lint:ignore directives, budget is $budget" >&2
    echo "adding one needs a reasoned directive AND a budget bump here:" >&2
    grep -rn --include='*.go' -E '^[[:space:]]*//lint:ignore ' . --exclude-dir=testdata --exclude='*_test.go' >&2 || true
    exit 1
fi

echo "== fuzz smoke (5s each)"
go test -run='^$' -fuzz=FuzzEncodeDecodeRoundTrip -fuzztime=5s ./internal/codec
go test -run='^$' -fuzz=FuzzResolutionFrameSize -fuzztime=5s ./internal/units
go test -run='^$' -fuzz=FuzzAPIDecodeRequest -fuzztime=5s ./internal/api
go test -run='^$' -fuzz=FuzzSegmentKey -fuzztime=5s ./internal/memo
go test -run='^$' -fuzz=FuzzDeviceKey -fuzztime=5s ./internal/fleet
go test -run='^$' -fuzz=FuzzRingOwner -fuzztime=5s ./internal/cluster

# The fleet bench asserts the scratch and delta arms produce identical
# aggregates before reporting speedup, so this smoke doubles as an
# end-to-end bit-identity check; the report goes to a scratch file so
# the committed BENCH_fleet.json (10k-device numbers) is not clobbered.
echo "== fleet smoke (bench-json fleet, 200 devices)"
fleet_tmp=$(mktemp)
go run ./cmd/blkv bench-json fleet -sizes 200 -o "$fleet_tmp"
rm -f "$fleet_tmp"

# The serve bench's cluster arms assert the two sharding invariants
# before reporting: summed node misses equal the schedule's distinct
# scenarios (each canonical key owned by exactly one node) and sampled
# responses match the single-node arm byte for byte. A small 2-node run
# is the cluster smoke; the committed BENCH_serve.json keeps the full
# 1/2/4-node curves.
echo "== cluster smoke (bench-json serve, 2 nodes)"
serve_tmp=$(mktemp)
go run ./cmd/blkv bench-json serve -c 16 -n 200 -nodes 1,2 -o "$serve_tmp"
rm -f "$serve_tmp"

echo "== service binaries respond to -help"
go run ./cmd/blkd -help
go run ./cmd/blkload -help

echo "all checks passed"
