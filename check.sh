#!/bin/sh
# Repository check: tier-1 build+test, race detector, vet, formatting
# (simplify mode), domain static analysis (blklint), and fuzz smoke.
# See README.md "Testing & verification" and "Static analysis".
set -e

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -s -l ."
fmt=$(gofmt -s -l .)
if [ -n "$fmt" ]; then
    echo "gofmt -s: these files need formatting/simplification:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== blklint ./..."
go run ./cmd/blklint ./...

echo "== fuzz smoke (5s each)"
go test -run='^$' -fuzz=FuzzEncodeDecodeRoundTrip -fuzztime=5s ./internal/codec
go test -run='^$' -fuzz=FuzzResolutionFrameSize -fuzztime=5s ./internal/units
go test -run='^$' -fuzz=FuzzAPIDecodeRequest -fuzztime=5s ./internal/api

echo "== service binaries respond to -help"
go run ./cmd/blkd -help
go run ./cmd/blkload -help

echo "all checks passed"
