#!/bin/sh
# Repository check: tier-1 build+test, race detector, vet, formatting.
# See README.md "Testing & verification".
set -e

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "all checks passed"
