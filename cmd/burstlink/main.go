// Command burstlink runs the paper's experiments and inspects the
// simulated display pipeline.
//
// Usage:
//
//	burstlink list                     # list experiment IDs
//	burstlink run <id>|all             # run one or all experiments
//	burstlink timeline [-scheme S] [-res R] [-fps N] [-hz N]
//	                                   # print a C-state timeline
//	burstlink functional [-frames N]   # run the functional simulators
//	burstlink calibrate                # print calibration anchors
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"burstlink/internal/core"
	"burstlink/internal/exp"
	"burstlink/internal/memo"
	"burstlink/internal/pipeline"
	"burstlink/internal/power"
	"burstlink/internal/session"
	"burstlink/internal/trace"
	"burstlink/internal/units"
	"burstlink/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		for _, e := range exp.FullRegistry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
	case "run":
		err = runCmd(os.Args[2:])
	case "timeline":
		err = timelineCmd(os.Args[2:])
	case "functional":
		err = functionalCmd(os.Args[2:])
	case "session":
		err = sessionCmd(os.Args[2:])
	case "calibrate":
		err = calibrateCmd()
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "burstlink:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: burstlink <command>

commands:
  list        list experiment IDs (paper tables and figures)
  run <id>    run one experiment, or "all" for every one (-json for JSON)
  timeline    print a package C-state timeline for a scheme/scenario
  functional  run the end-to-end functional simulators (real codec)
  session     play a full streaming session under every scheme
  calibrate   print the Table 2 calibration anchors`)
}

func runCmd(args []string) error {
	asJSON := false
	if len(args) > 0 && args[0] == "-json" {
		asJSON = true
		args = args[1:]
	}
	if len(args) < 1 {
		return fmt.Errorf("run: need an experiment ID or 'all'")
	}
	emit := func(tab exp.Table) error {
		if asJSON {
			b, err := tab.JSON()
			if err != nil {
				return err
			}
			fmt.Print(string(b))
			return nil
		}
		fmt.Println(tab.String())
		return nil
	}
	if args[0] == "all" {
		// The drivers are independent, so the sweep runs them on the
		// worker pool; tables still print in registry order. Ctrl-C
		// cancels the cells that have not started yet.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		tabs, err := exp.RunAll(ctx, exp.Registry())
		if err != nil {
			return err
		}
		for _, tab := range tabs {
			if err := emit(tab); err != nil {
				return err
			}
		}
		return nil
	}
	e, err := exp.ByID(args[0])
	if err != nil {
		return err
	}
	tab, err := e.Run()
	if err != nil {
		return err
	}
	return emit(tab)
}

func resolveRes(name string) (units.Resolution, error) {
	switch strings.ToUpper(name) {
	case "FHD":
		return units.FHD, nil
	case "QHD":
		return units.QHD, nil
	case "4K":
		return units.R4K, nil
	case "5K":
		return units.R5K, nil
	}
	return units.Resolution{}, fmt.Errorf("unknown resolution %q (FHD, QHD, 4K, 5K)", name)
}

func timelineCmd(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
	scheme := fs.String("scheme", "burstlink", "baseline | burst | bypass | burstlink")
	resName := fs.String("res", "FHD", "FHD | QHD | 4K | 5K")
	fps := fs.Int("fps", 30, "video frame rate")
	hz := fs.Int("hz", 60, "panel refresh rate")
	chrome := fs.String("chrome", "", "also write a Chrome trace-viewer JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := resolveRes(*resName)
	if err != nil {
		return err
	}
	p := pipeline.DefaultPlatform()
	s := pipeline.Planar(res, units.RefreshRate(*hz), units.FPS(*fps))

	schedulers := map[string]func(pipeline.Platform, pipeline.Scenario) (trace.Timeline, error){
		"baseline":  pipeline.Conventional,
		"burst":     core.BurstOnly,
		"bypass":    core.BypassOnly,
		"burstlink": core.BurstLink,
	}
	sched, ok := schedulers[strings.ToLower(*scheme)]
	if !ok {
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	tl, err := sched(p, s)
	if err != nil {
		return err
	}
	fmt.Printf("%s %s %dFPS on %dHz, one frame period\n", *scheme, res.Name(), *fps, *hz)
	fmt.Println("timeline:", tl.ASCII(64))
	fmt.Println("residency:", tl.String())
	fmt.Println("legend: 0=C0 2=C2 7=C7 '=C7' 8=C8 9=C9")
	if *chrome != "" {
		b, err := tl.ChromeTrace(fmt.Sprintf("%s-%s-%dfps", *scheme, res.Name(), *fps))
		if err != nil {
			return err
		}
		if err := os.WriteFile(*chrome, b, 0o644); err != nil {
			return err
		}
		fmt.Println("chrome trace written to", *chrome, "(open in ui.perfetto.dev)")
	}
	return nil
}

func functionalCmd(args []string) error {
	fs := flag.NewFlagSet("functional", flag.ContinueOnError)
	frames := fs.Int("frames", 16, "number of frames")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := pipeline.DefaultPlatform()
	cfg := pipeline.FunctionalConfig{Width: 128, Height: 96, Frames: *frames, FPS: 30, Refresh: 60}

	// Both runs exercise the same synthetic content; the segment cache
	// shares the encode between them.
	seg := memo.NewCache(8)
	base, err := pipeline.RunFunctionalMemo(p, seg, cfg)
	if err != nil {
		return err
	}
	bl, err := core.RunFunctionalMemo(p, seg, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("functional run: %d frames of %dx%d video, real codec\n\n", *frames, cfg.Width, cfg.Height)
	fmt.Printf("%-22s %14s %14s\n", "", "conventional", "burstlink")
	fmt.Printf("%-22s %14d %14d\n", "frames verified", base.FramesVerified, bl.FramesVerified)
	fmt.Printf("%-22s %14d %14d\n", "checksum errors", base.ChecksumErrors, bl.ChecksumErrors)
	fmt.Printf("%-22s %14d %14d\n", "panel tears", base.Panel.Tears, bl.Panel.Tears)
	fmt.Printf("%-22s %14v %14v\n", "DRAM reads", base.DRAMRead, bl.DRAMRead)
	fmt.Printf("%-22s %14v %14v\n", "DRAM writes", base.DRAMWrite, bl.DRAMWrite)
	fmt.Printf("%-22s %14v %14v\n", "P2P (bypass) bytes", base.P2PBytes, bl.P2PBytes)
	fmt.Printf("%-22s %14s %14s\n", "deepest C-state",
		base.Timeline.DeepestState().String(), bl.Timeline.DeepestState().String())
	return nil
}

func sessionCmd(args []string) error {
	fs := flag.NewFlagSet("session", flag.ContinueOnError)
	resName := fs.String("res", "4K", "FHD | QHD | 4K | 5K")
	fps := fs.Int("fps", 60, "video frame rate")
	secs := fs.Int("seconds", 30, "seconds of playback")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := resolveRes(*resName)
	if err != nil {
		return err
	}
	p := pipeline.DefaultPlatform()
	m := power.Default()
	cfg := session.Config{Scenario: pipeline.Planar(res, 60, units.FPS(*fps)), Seconds: *secs}
	results, err := session.Compare(p, m, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%ds streaming session, %s %dFPS on 60Hz\n\n", *secs, res.Name(), *fps)
	fmt.Printf("%-14s %10s %12s %10s %12s %12s %7s\n",
		"scheme", "avg power", "energy", "battery", "dram rd/s", "dram wr/s", "stalls")
	for _, r := range results {
		fmt.Printf("%-14s %10v %12v %10s %12v %12v %7d\n",
			r.Scheme, r.AvgPower, r.Energy, workload.LifeString(r.BatteryLife),
			r.DRAMRead, r.DRAMWrite, r.Stalls)
	}
	return nil
}

func calibrateCmd() error {
	p := pipeline.DefaultPlatform()
	m := power.Default()
	s := pipeline.Planar(units.FHD, 60, 30)
	load := power.LoadOf(p, s)
	base, err := pipeline.Conventional(p, s)
	if err != nil {
		return err
	}
	bl, err := core.BurstLink(p, s)
	if err != nil {
		return err
	}
	fmt.Println("calibration anchors (paper Table 2, FHD 30FPS on 60Hz):")
	fmt.Printf("  baseline  AvgP model %v vs measured 2162 mW; residency %s\n",
		m.Evaluate(base, load).Average, base.String())
	fmt.Printf("  burstlink AvgP model %v vs measured 1274 mW; residency %s\n",
		m.Evaluate(bl, load).Average, bl.String())
	return nil
}
