package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"burstlink/internal/fleet"
	"burstlink/internal/memo"
	"burstlink/internal/par"
	"burstlink/internal/sink"
)

// bench-json fleet measures the batch execution engine: the reference
// population at several sizes, each run twice — the delta arm (shared
// segment cache) and the scratch arm (full timeline expansion per
// session). Both arms produce bit-identical aggregates (asserted per
// point); the report is the throughput contrast and the segment-cache
// hit ratio that explains it. Population scaling is nearly free for the
// delta arm because device count grows while the unique-configuration
// count saturates at the spec's cross product.

// fleetArm is one (size, strategy) measurement.
type fleetArm struct {
	WallNs          int64   `json:"wall_ns"`
	DevicesPerSec   float64 `json:"devices_per_sec"`
	SegmentHits     uint64  `json:"segment_hits"`
	SegmentMisses   uint64  `json:"segment_misses"`
	SegmentHitRatio float64 `json:"segment_hit_ratio"`
}

// fleetPoint is one population size: both arms plus the cross-checks.
type fleetPoint struct {
	Size   int      `json:"size"`
	Unique int      `json:"unique_configs"`
	Delta  fleetArm `json:"delta"`
	// Scratch omits segment counters: the scratch arm runs no cache.
	Scratch fleetArm `json:"scratch"`
	// Speedup is delta devices/sec over scratch devices/sec.
	Speedup float64 `json:"speedup"`
	// AggregatesMatch asserts the two arms' aggregate JSON was
	// byte-identical (the determinism contract at bench scale).
	AggregatesMatch bool `json:"aggregates_match"`
}

// fleetBenchReport is the top-level BENCH_fleet.json document.
type fleetBenchReport struct {
	Seed    uint64       `json:"seed"`
	Workers int          `json:"workers"`
	Points  []fleetPoint `json:"points"`
}

// runFleetArm executes the reference population at one size under one
// strategy and returns the timing plus the aggregate bytes.
func runFleetArm(size int, seed uint64, scratch bool) (fleetArm, []byte, int, error) {
	pop := fleet.Default()
	pop.Size = size
	pop.Seed = seed
	opts := fleet.Options{Scratch: scratch}
	if !scratch {
		opts.Memo = memo.NewCache(8192)
	}
	var agg sink.Agg
	start := time.Now()
	out, err := fleet.Run(context.Background(), pop, &agg, opts)
	wall := time.Since(start)
	if err != nil {
		return fleetArm{}, nil, 0, err
	}
	b, err := json.Marshal(agg.Summaries())
	if err != nil {
		return fleetArm{}, nil, 0, err
	}
	arm := fleetArm{
		WallNs:        wall.Nanoseconds(),
		DevicesPerSec: float64(out.Devices) / wall.Seconds(),
	}
	if opts.Memo != nil {
		st := opts.Memo.Stats()
		arm.SegmentHits = st.Hits
		arm.SegmentMisses = st.Misses
		if total := st.Hits + st.Misses; total > 0 {
			arm.SegmentHitRatio = float64(st.Hits) / float64(total)
		}
	}
	return arm, b, out.Unique, nil
}

func benchFleetCmd(args []string) error {
	fs := flag.NewFlagSet("bench-json fleet", flag.ContinueOnError)
	out := fs.String("o", "BENCH_fleet.json", "output JSON file")
	sizes := fs.String("sizes", "1000,10000", "comma-separated population sizes")
	seed := fs.Uint64("seed", 1, "population seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report := fleetBenchReport{Seed: *seed, Workers: par.Workers()}
	for _, field := range strings.Split(*sizes, ",") {
		size, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || size < 1 {
			return fmt.Errorf("bench-json fleet: bad size %q", field)
		}
		delta, deltaAgg, unique, err := runFleetArm(size, *seed, false)
		if err != nil {
			return fmt.Errorf("bench-json fleet (delta, n=%d): %w", size, err)
		}
		scratch, scratchAgg, _, err := runFleetArm(size, *seed, true)
		if err != nil {
			return fmt.Errorf("bench-json fleet (scratch, n=%d): %w", size, err)
		}
		pt := fleetPoint{
			Size:            size,
			Unique:          unique,
			Delta:           delta,
			Scratch:         scratch,
			AggregatesMatch: string(deltaAgg) == string(scratchAgg),
		}
		if scratch.DevicesPerSec > 0 {
			pt.Speedup = delta.DevicesPerSec / scratch.DevicesPerSec
		}
		if !pt.AggregatesMatch {
			return fmt.Errorf("bench-json fleet (n=%d): delta and scratch aggregates differ", size)
		}
		report.Points = append(report.Points, pt)
		fmt.Printf("fleet n=%-8d unique %-4d delta %10.1f dev/s (hit %.2f)   scratch %8.1f dev/s   speedup %.1fx\n",
			size, unique, delta.DevicesPerSec, delta.SegmentHitRatio, scratch.DevicesPerSec, pt.Speedup)
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (workers=%d)\n", *out, report.Workers)
	return nil
}
