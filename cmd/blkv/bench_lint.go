package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"burstlink/internal/lint"
)

// bench-json lint measures the static-analysis budget the same way the
// simulation hot paths are measured: wall-clock for a full-module
// blklint run, split into the one-time load/type-check cost and the
// per-analyzer-set analysis cost. Two arms: the v2 set (everything up
// to the CFG/call-graph analyzers) and the full set including the v3
// value-flow analyzers (aliascheck, purecheck), so the report is the
// marginal cost of cache-integrity analysis. Each arm rebuilds the
// shared Program from scratch — summaries are memoized within a run,
// never across arms — so the contrast is load-free but honest.

// lintArm is one analyzer-set measurement: best-of-reps analysis wall
// time and the (rep-invariant) findings count.
type lintArm struct {
	Analyzers int   `json:"analyzers"`
	AnalyzeNs int64 `json:"analyze_ns"`
	Findings  int   `json:"findings"`
}

// lintBenchReport is the top-level BENCH_lint.json document.
type lintBenchReport struct {
	Packages int     `json:"packages"`
	LoadNs   int64   `json:"load_ns"`
	Reps     int     `json:"reps"`
	V2       lintArm `json:"v2"`
	V3       lintArm `json:"v2_plus_v3"`
	// V3CostRatio is the full-set analysis time over the v2-only time:
	// how much the value-flow layer adds on top of everything before it.
	V3CostRatio float64 `json:"v3_cost_ratio"`
}

// measureLintArm runs the analyzer set reps times over the loaded
// packages, keeping the best wall time and the findings count (which
// must not vary across reps — the analyzers are deterministic).
func measureLintArm(pkgs []*lint.Package, analyzers []*lint.Analyzer, reps int) (lintArm, error) {
	arm := lintArm{Analyzers: len(analyzers)}
	for i := 0; i < reps; i++ {
		start := time.Now()
		findings := lint.RunAnalyzers(pkgs, analyzers)
		d := time.Since(start)
		if i > 0 && len(findings) != arm.Findings {
			return lintArm{}, fmt.Errorf("findings count unstable across reps: %d then %d", arm.Findings, len(findings))
		}
		arm.Findings = len(findings)
		if arm.AnalyzeNs == 0 || d.Nanoseconds() < arm.AnalyzeNs {
			arm.AnalyzeNs = d.Nanoseconds()
		}
	}
	return arm, nil
}

func benchLintCmd(args []string) error {
	fs := flag.NewFlagSet("bench-json lint", flag.ContinueOnError)
	out := fs.String("o", "BENCH_lint.json", "output JSON file")
	reps := fs.Int("reps", 3, "repetitions per analyzer set (best time wins)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("bench-json lint: -reps must be >= 1")
	}

	wd, err := os.Getwd()
	if err != nil {
		return err
	}
	start := time.Now()
	pkgs, err := lint.Load(wd, []string{"./..."})
	if err != nil {
		return fmt.Errorf("bench-json lint: %w", err)
	}
	report := lintBenchReport{
		Packages: len(pkgs),
		LoadNs:   time.Since(start).Nanoseconds(),
		Reps:     *reps,
	}

	all := lint.All()
	v2 := make([]*lint.Analyzer, 0, len(all))
	for _, a := range all {
		if a.Name == "aliascheck" || a.Name == "purecheck" {
			continue
		}
		v2 = append(v2, a)
	}
	if report.V2, err = measureLintArm(pkgs, v2, *reps); err != nil {
		return fmt.Errorf("bench-json lint (v2): %w", err)
	}
	if report.V3, err = measureLintArm(pkgs, all, *reps); err != nil {
		return fmt.Errorf("bench-json lint (v2+v3): %w", err)
	}
	if report.V2.AnalyzeNs > 0 {
		report.V3CostRatio = float64(report.V3.AnalyzeNs) / float64(report.V2.AnalyzeNs)
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("lint load %6.1fms (%d pkgs)   v2 (%d analyzers) %6.1fms, %d findings   v2+v3 (%d) %6.1fms, %d findings   v3 cost %.2fx\n",
		float64(report.LoadNs)/1e6, report.Packages,
		report.V2.Analyzers, float64(report.V2.AnalyzeNs)/1e6, report.V2.Findings,
		report.V3.Analyzers, float64(report.V3.AnalyzeNs)/1e6, report.V3.Findings,
		report.V3CostRatio)
	fmt.Printf("wrote %s\n", *out)
	return nil
}
