package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"time"

	"burstlink/internal/lint"
)

// bench-json lint measures the static-analysis budget the same way the
// simulation hot paths are measured: wall-clock for a full-module
// blklint run, split into the one-time load/type-check cost and the
// per-analyzer-set analysis cost. Three analyzer arms: the v2 set
// (everything up to the CFG/call-graph analyzers), v2 plus the v3
// value-flow analyzers (aliascheck, purecheck), and the full v4 set
// adding the concurrency-soundness layer (lockorder, leakcheck,
// chancheck) — so the report shows the marginal cost of each layer.
// Each arm rebuilds the shared Program from scratch — summaries are
// memoized within a run, never across arms — so the contrast is
// load-free but honest.
//
// Two more arms measure the incremental fact cache end-to-end (load
// included, because skipping the load is the whole point): a cold
// RunCached into an empty temp cache dir, then a warm RunCached over
// the same dir. The warm arm must serve every package from cache and
// reproduce the cold findings exactly, or the bench refuses to write.

// lintArm is one analyzer-set measurement: best-of-reps analysis wall
// time and the (rep-invariant) findings count.
type lintArm struct {
	Analyzers int   `json:"analyzers"`
	AnalyzeNs int64 `json:"analyze_ns"`
	Findings  int   `json:"findings"`
}

// lintCacheArm is one end-to-end RunCached measurement: wall time
// including discovery, hashing, loading, and analysis.
type lintCacheArm struct {
	WallNs   int64 `json:"wall_ns"`
	Cached   int   `json:"cached"`
	Analyzed int   `json:"analyzed"`
	Findings int   `json:"findings"`
}

// lintBenchReport is the top-level BENCH_lint.json document.
type lintBenchReport struct {
	Packages int     `json:"packages"`
	LoadNs   int64   `json:"load_ns"`
	Reps     int     `json:"reps"`
	V2       lintArm `json:"v2"`
	V3       lintArm `json:"v2_plus_v3"`
	V4       lintArm `json:"v2_plus_v3_plus_v4"`
	// V3CostRatio is the v2+v3 analysis time over the v2-only time:
	// how much the value-flow layer adds on top of everything before it.
	V3CostRatio float64 `json:"v3_cost_ratio"`
	// V4CostRatio is the full-set analysis time over the v2+v3 time:
	// the marginal cost of the concurrency-soundness layer.
	V4CostRatio float64 `json:"v4_cost_ratio"`
	// CacheCold and CacheWarm are full-set RunCached end-to-end runs
	// against an empty and then a fully-primed fact cache.
	CacheCold lintCacheArm `json:"cache_cold"`
	CacheWarm lintCacheArm `json:"cache_warm"`
	// WarmSpeedup is cold wall time over warm wall time: what the fact
	// cache buys a no-op re-lint.
	WarmSpeedup float64 `json:"warm_speedup"`
}

// measureLintArm runs the analyzer set reps times over the loaded
// packages, keeping the best wall time and the findings count (which
// must not vary across reps — the analyzers are deterministic).
func measureLintArm(pkgs []*lint.Package, analyzers []*lint.Analyzer, reps int) (lintArm, error) {
	arm := lintArm{Analyzers: len(analyzers)}
	for i := 0; i < reps; i++ {
		start := time.Now()
		findings := lint.RunAnalyzers(pkgs, analyzers)
		d := time.Since(start)
		if i > 0 && len(findings) != arm.Findings {
			return lintArm{}, fmt.Errorf("findings count unstable across reps: %d then %d", arm.Findings, len(findings))
		}
		arm.Findings = len(findings)
		if arm.AnalyzeNs == 0 || d.Nanoseconds() < arm.AnalyzeNs {
			arm.AnalyzeNs = d.Nanoseconds()
		}
	}
	return arm, nil
}

// measureLintCache times one end-to-end RunCached call.
func measureLintCache(wd, cacheDir string, analyzers []*lint.Analyzer) (lintCacheArm, []lint.Finding, error) {
	start := time.Now()
	findings, stats, err := lint.RunCached(wd, cacheDir, []string{"./..."}, analyzers)
	if err != nil {
		return lintCacheArm{}, nil, err
	}
	return lintCacheArm{
		WallNs:   time.Since(start).Nanoseconds(),
		Cached:   stats.Cached,
		Analyzed: stats.Analyzed,
		Findings: len(findings),
	}, findings, nil
}

func benchLintCmd(args []string) error {
	fs := flag.NewFlagSet("bench-json lint", flag.ContinueOnError)
	out := fs.String("o", "BENCH_lint.json", "output JSON file")
	reps := fs.Int("reps", 3, "repetitions per analyzer set (best time wins)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("bench-json lint: -reps must be >= 1")
	}

	wd, err := os.Getwd()
	if err != nil {
		return err
	}
	start := time.Now()
	pkgs, err := lint.Load(wd, []string{"./..."})
	if err != nil {
		return fmt.Errorf("bench-json lint: %w", err)
	}
	report := lintBenchReport{
		Packages: len(pkgs),
		LoadNs:   time.Since(start).Nanoseconds(),
		Reps:     *reps,
	}

	all := lint.All()
	v4names := map[string]bool{"lockorder": true, "leakcheck": true, "chancheck": true}
	v2 := make([]*lint.Analyzer, 0, len(all))
	v3 := make([]*lint.Analyzer, 0, len(all))
	for _, a := range all {
		if v4names[a.Name] {
			continue
		}
		v3 = append(v3, a)
		if a.Name == "aliascheck" || a.Name == "purecheck" {
			continue
		}
		v2 = append(v2, a)
	}
	if report.V2, err = measureLintArm(pkgs, v2, *reps); err != nil {
		return fmt.Errorf("bench-json lint (v2): %w", err)
	}
	if report.V3, err = measureLintArm(pkgs, v3, *reps); err != nil {
		return fmt.Errorf("bench-json lint (v2+v3): %w", err)
	}
	if report.V4, err = measureLintArm(pkgs, all, *reps); err != nil {
		return fmt.Errorf("bench-json lint (v2+v3+v4): %w", err)
	}
	if report.V2.AnalyzeNs > 0 {
		report.V3CostRatio = float64(report.V3.AnalyzeNs) / float64(report.V2.AnalyzeNs)
	}
	if report.V3.AnalyzeNs > 0 {
		report.V4CostRatio = float64(report.V4.AnalyzeNs) / float64(report.V3.AnalyzeNs)
	}

	cacheDir, err := os.MkdirTemp("", "blklint-bench-cache-")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(cacheDir) }() // best-effort temp-dir cleanup

	var coldFindings, warmFindings []lint.Finding
	if report.CacheCold, coldFindings, err = measureLintCache(wd, cacheDir, all); err != nil {
		return fmt.Errorf("bench-json lint (cache cold): %w", err)
	}
	if report.CacheWarm, warmFindings, err = measureLintCache(wd, cacheDir, all); err != nil {
		return fmt.Errorf("bench-json lint (cache warm): %w", err)
	}
	// A warm arm that re-analyzed anything, or that diverged from the
	// cold findings, is measuring a broken cache — refuse to report it.
	if report.CacheWarm.Cached == 0 || report.CacheWarm.Cached != report.Packages {
		return fmt.Errorf("bench-json lint: warm run served %d/%d packages from cache; cache is not warming",
			report.CacheWarm.Cached, report.Packages)
	}
	if !reflect.DeepEqual(coldFindings, warmFindings) {
		return fmt.Errorf("bench-json lint: warm findings diverge from cold (%d vs %d)",
			len(warmFindings), len(coldFindings))
	}
	if report.CacheWarm.WallNs > 0 {
		report.WarmSpeedup = float64(report.CacheCold.WallNs) / float64(report.CacheWarm.WallNs)
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("lint load %6.1fms (%d pkgs)   v2 (%d analyzers) %6.1fms   +v3 (%d) %6.1fms (%.2fx)   +v4 (%d) %6.1fms (%.2fx), %d findings\n",
		float64(report.LoadNs)/1e6, report.Packages,
		report.V2.Analyzers, float64(report.V2.AnalyzeNs)/1e6,
		report.V3.Analyzers, float64(report.V3.AnalyzeNs)/1e6, report.V3CostRatio,
		report.V4.Analyzers, float64(report.V4.AnalyzeNs)/1e6, report.V4CostRatio,
		report.V4.Findings)
	fmt.Printf("fact cache: cold %6.1fms (%d analyzed)   warm %6.1fms (%d/%d cached)   speedup %.1fx\n",
		float64(report.CacheCold.WallNs)/1e6, report.CacheCold.Analyzed,
		float64(report.CacheWarm.WallNs)/1e6, report.CacheWarm.Cached, report.Packages,
		report.WarmSpeedup)
	fmt.Printf("wrote %s\n", *out)
	return nil
}
