// Command blkv is a standalone tool for the repository's video codec: it
// encodes synthetic test footage into the BLKV1 container, inspects
// streams, and decodes them (optionally dumping raw RGB frames). It
// exists so the codec substrate can be exercised and inspected outside
// the simulators.
//
// Usage:
//
//	blkv encode -o stream.blkv [-w 320] [-h 180] [-frames 60] [-q 50] [-b 2]
//	blkv info   -i stream.blkv
//	blkv decode -i stream.blkv [-raw frames.rgb]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"burstlink/internal/codec"
	"burstlink/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = encodeCmd(os.Args[2:])
	case "info":
		err = infoCmd(os.Args[2:])
	case "decode":
		err = decodeCmd(os.Args[2:])
	case "bench-json":
		err = benchJSONCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "blkv:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: blkv <encode|info|decode|bench-json> [flags]

  encode     -o FILE [-w W] [-h H] [-frames N] [-q QUALITY] [-b BPERIOD] [-bitrate MBPS]
  info       -i FILE
  decode     -i FILE [-raw FILE]
  bench-json [-o FILE] [-w W] [-h H] [-reps N]   time the parallel kernels, write JSON
  bench-json serve [-o FILE] [-c N] [-n N] [-dup F] [-seed N]
             drive an in-process blkd with and without the scenario cache, write JSON
  bench-json fleet [-o FILE] [-sizes N,N,...] [-seed N]
             batch-simulate the reference device population, delta vs scratch, write JSON
  bench-json lint [-o FILE] [-reps N]
             time a full-module blklint run, v2 analyzers vs v2+v3, write JSON`)
}

// synthFrame draws moving synthetic content.
func synthFrame(w, h, seq int) *codec.Frame {
	f := codec.NewFrame(w, h)
	f.Seq = seq
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			f.Planes[0][i] = byte((x*5 + seq*2) & 0xFF)
			f.Planes[1][i] = byte((y*3 + seq) & 0xFF)
			f.Planes[2][i] = byte((x ^ y) & 0xFF)
		}
	}
	bx := (seq * 4) % (w - 16)
	for y := h / 4; y < h/4+16 && y < h; y++ {
		for x := bx; x < bx+16; x++ {
			f.Planes[0][y*w+x] = 250
		}
	}
	return f
}

func encodeCmd(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ContinueOnError)
	out := fs.String("o", "", "output container file")
	w := fs.Int("w", 320, "width")
	h := fs.Int("h", 180, "height")
	frames := fs.Int("frames", 60, "frame count")
	q := fs.Int("q", 50, "quality 1-100")
	bPeriod := fs.Int("b", 0, "B-frames between anchors")
	mbps := fs.Float64("bitrate", 0, "target bitrate in Mbps (enables rate control; overrides -q and -b)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("encode: -o required")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	sw := codec.NewStreamWriter(f)

	cfg := codec.DefaultEncoderConfig()
	cfg.Quality = *q

	if *mbps > 0 {
		rc, err := codec.NewRateController(units.DataRate(*mbps)*units.Mbps, 30, *q)
		if err != nil {
			return err
		}
		enc, err := codec.NewRateControlledEncoder(*w, *h, cfg, rc)
		if err != nil {
			return err
		}
		for i := 0; i < *frames; i++ {
			pkt, _, err := enc.Encode(synthFrame(*w, *h, i))
			if err != nil {
				return err
			}
			if err := sw.WritePacket(pkt); err != nil {
				return err
			}
		}
		fmt.Printf("encoded %d frames, %v, avg %v/frame (target %v)\n",
			sw.Packets(), units.ByteSize(sw.BytesWritten()), rc.AverageFrameBytes(), rc.TargetFrameBytes())
		return nil
	}

	genc, err := codec.NewGOPEncoder(*w, *h, cfg, *bPeriod)
	if err != nil {
		return err
	}
	for i := 0; i < *frames; i++ {
		pkts, err := genc.Push(synthFrame(*w, *h, i))
		if err != nil {
			return err
		}
		for _, pkt := range pkts {
			if err := sw.WritePacket(pkt); err != nil {
				return err
			}
		}
	}
	tail, err := genc.Flush()
	if err != nil {
		return err
	}
	for _, pkt := range tail {
		if err := sw.WritePacket(pkt); err != nil {
			return err
		}
	}
	raw := units.ByteSize(*frames * *w * *h * 3)
	fmt.Printf("encoded %d frames (%dx%d, q%d, B=%d): %v (raw %v, %.1fx)\n",
		*frames, *w, *h, *q, *bPeriod, units.ByteSize(sw.BytesWritten()), raw,
		float64(raw)/float64(sw.BytesWritten()))
	return nil
}

func openStream(path string) (*codec.StreamReader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	sr, err := codec.NewStreamReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return sr, f, nil
}

func infoCmd(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	in := fs.String("i", "", "input container file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("info: -i required")
	}
	sr, f, err := openStream(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	counts := map[codec.FrameType]int{}
	var bytes, n int
	for {
		pkt, err := sr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		counts[pkt.Type]++
		bytes += pkt.Size()
		n++
	}
	fmt.Printf("%s: %d packets (%d I, %d P, %d B), %v payload\n",
		*in, n, counts[codec.IFrame], counts[codec.PFrame], counts[codec.BFrame], units.ByteSize(bytes))
	return nil
}

func decodeCmd(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ContinueOnError)
	in := fs.String("i", "", "input container file")
	raw := fs.String("raw", "", "write decoded frames as raw interleaved RGB")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("decode: -i required")
	}
	sr, f, err := openStream(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	var rawOut *os.File
	if *raw != "" {
		rawOut, err = os.Create(*raw)
		if err != nil {
			return err
		}
		defer rawOut.Close()
	}

	dec := codec.NewGOPDecoder()
	frames := 0
	var lastW, lastH int
	for {
		pkt, err := sr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		out, err := dec.Push(pkt)
		if err != nil {
			return fmt.Errorf("packet seq %d: %w", pkt.Seq, err)
		}
		for _, fr := range out {
			frames++
			lastW, lastH = fr.W, fr.H
			if rawOut != nil {
				if _, err := rawOut.Write(fr.Interleaved()); err != nil {
					return err
				}
			}
		}
	}
	fmt.Printf("decoded %d frames (%dx%d) in display order\n", frames, lastW, lastH)
	if dec.Pending() != 0 {
		return fmt.Errorf("stream ended with %d frames stuck in the reorder buffer", dec.Pending())
	}
	return nil
}
