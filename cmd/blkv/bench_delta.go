package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"burstlink/internal/api"
	"burstlink/internal/server"
)

// bench-json serve -sweep measures delta simulation (internal/memo +
// session.Engine, DESIGN.md §4.9) rather than the service layer: an
// axis-neighbor sweep schedule — each new cell moves exactly one knob —
// runs once against a server with the segment cache enabled and once
// against a server doing full scratch simulation (full timeline
// expansion, no segment reuse). The result cache and request coalescing
// are disabled in BOTH arms so every request actually simulates; the
// throughput ratio is what segment-level memoization alone buys on
// sweep-shaped load.

// deltaReport is the top-level BENCH_delta.json document.
type deltaReport struct {
	Concurrency int            `json:"concurrency"`
	Requests    int            `json:"requests"`
	DupRate     float64        `json:"dup_rate"`
	Seed        int64          `json:"seed"`
	Delta       api.LoadReport `json:"delta"`
	Scratch     api.LoadReport `json:"scratch"`
	// Segment* snapshot the delta arm's server-side segment cache.
	SegmentHits      uint64  `json:"segment_hits"`
	SegmentMisses    uint64  `json:"segment_misses"`
	SegmentCoalesced uint64  `json:"segment_coalesced"`
	SegmentHitRatio  float64 `json:"segment_hit_ratio"`
	// Speedup is delta throughput over scratch throughput.
	Speedup float64 `json:"speedup"`
}

// benchDelta runs the scratch-vs-delta comparison and writes out.
func benchDelta(out string, opts api.LoadOptions) error {
	opts.Sweep = true

	delta, stats, err := runServeLoad(server.Config{DisableCache: true, DisableCoalesce: true}, opts)
	if err != nil {
		return fmt.Errorf("bench delta (delta): %w", err)
	}
	if delta.Errors > 0 {
		return fmt.Errorf("bench delta (delta): %d request errors (first: %s)", delta.Errors, delta.FirstError)
	}
	scratch, _, err := runServeLoad(server.Config{DisableCache: true, DisableCoalesce: true, DisableDelta: true}, opts)
	if err != nil {
		return fmt.Errorf("bench delta (scratch): %w", err)
	}
	if scratch.Errors > 0 {
		return fmt.Errorf("bench delta (scratch): %d request errors (first: %s)", scratch.Errors, scratch.FirstError)
	}

	report := deltaReport{
		Concurrency:      opts.Concurrency,
		Requests:         opts.Requests,
		DupRate:          opts.DupRate,
		Seed:             opts.Seed,
		Delta:            delta,
		Scratch:          scratch,
		SegmentHits:      stats.SegmentHits,
		SegmentMisses:    stats.SegmentMisses,
		SegmentCoalesced: stats.SegmentCoalesced,
		SegmentHitRatio:  stats.SegmentHitRatio,
	}
	if scratch.Throughput > 0 {
		report.Speedup = delta.Throughput / scratch.Throughput
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}

	fmt.Printf("delta sweep (c=%d, n=%d, axis-neighbor cells)\n", opts.Concurrency, opts.Requests)
	fmt.Printf("  delta     %8.1f req/s  p50 %8v  p99 %8v  segment hit ratio %.2f\n",
		delta.Throughput, delta.P50.Round(time.Microsecond), delta.P99.Round(time.Microsecond), stats.SegmentHitRatio)
	fmt.Printf("  scratch   %8.1f req/s  p50 %8v  p99 %8v\n",
		scratch.Throughput, scratch.P50.Round(time.Microsecond), scratch.P99.Round(time.Microsecond))
	fmt.Printf("  speedup   %.2fx\n", report.Speedup)
	fmt.Printf("wrote %s\n", out)
	return nil
}
