package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"burstlink/internal/codec"
	"burstlink/internal/exp"
	"burstlink/internal/par"
	"burstlink/internal/units"
	"burstlink/internal/vr"
)

// bench-json times the three worker-pool kernels (codec encode, VR
// projection, experiment sweep) serially (par.SetWorkers(1)) and with the
// full pool, and writes the timings plus speedups as machine-readable
// JSON. CI and the bench harness consume the file; on a single-core
// machine the speedups hover around 1.

// benchResult is one serial-vs-parallel measurement.
type benchResult struct {
	Name       string  `json:"name"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// benchReport is the top-level BENCH_parallel.json document.
type benchReport struct {
	Workers    int           `json:"workers"`
	Reps       int           `json:"reps"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// timeKernel runs fn reps times and returns the best (minimum) duration,
// the usual way to suppress scheduling noise in coarse wall-clock timing.
func timeKernel(reps int, fn func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// measure times fn serially and with the default worker pool.
func measure(name string, reps int, fn func() error) (benchResult, error) {
	prev := par.SetWorkers(1)
	serial, err := timeKernel(reps, fn)
	par.SetWorkers(prev)
	if err != nil {
		return benchResult{}, fmt.Errorf("%s (serial): %w", name, err)
	}
	parallel, err := timeKernel(reps, fn)
	if err != nil {
		return benchResult{}, fmt.Errorf("%s (parallel): %w", name, err)
	}
	res := benchResult{Name: name, SerialNs: serial.Nanoseconds(), ParallelNs: parallel.Nanoseconds()}
	if parallel > 0 {
		res.Speedup = float64(serial) / float64(parallel)
	}
	return res, nil
}

func benchJSONCmd(args []string) error {
	if len(args) > 0 && args[0] == "serve" {
		return benchServeCmd(args[1:])
	}
	if len(args) > 0 && args[0] == "fleet" {
		return benchFleetCmd(args[1:])
	}
	if len(args) > 0 && args[0] == "lint" {
		return benchLintCmd(args[1:])
	}
	fs := flag.NewFlagSet("bench-json", flag.ContinueOnError)
	out := fs.String("o", "BENCH_parallel.json", "output JSON file")
	w := fs.Int("w", 1280, "encode benchmark frame width")
	h := fs.Int("h", 720, "encode benchmark frame height")
	reps := fs.Int("reps", 3, "repetitions per kernel (best time wins)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("bench-json: -reps must be >= 1")
	}

	report := benchReport{Workers: par.Workers(), Reps: *reps}

	// Codec: one I frame plus one motion-searched P frame per run.
	encBench := func() error {
		cfg := codec.DefaultEncoderConfig()
		enc, err := codec.NewEncoder(*w, *h, cfg)
		if err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			if _, _, err := enc.Encode(synthFrame(*w, *h, i)); err != nil {
				return err
			}
		}
		return nil
	}
	res, err := measure(fmt.Sprintf("codec-encode-%dx%d", *w, *h), *reps, encBench)
	if err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks, res)

	// VR: one HMD-scale viewport from a 4K-class equirectangular source.
	src := codec.NewFrame(2048, 1024)
	for p := range src.Planes {
		for i := range src.Planes[p] {
			src.Planes[p][i] = byte(i*7 + p)
		}
	}
	pr, err := vr.NewProjector(units.Resolution{Width: 1440, Height: 1600}, 100)
	if err != nil {
		return err
	}
	tr, err := vr.Rollercoaster.Trace()
	if err != nil {
		return err
	}
	res, err = measure("vr-project-1440x1600", *reps, func() error {
		pr.Project(src, tr(0.5))
		return nil
	})
	if err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks, res)

	// Experiments: the full paper sweep, the `burstlink run all` workload.
	// Ctrl-C cancels the sweep cells that have not started yet.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	exps := exp.Registry()
	res, err = measure("exp-sweep-registry", *reps, func() error {
		_, err := exp.RunAll(ctx, exps)
		return err
	})
	if err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks, res)

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	for _, r := range report.Benchmarks {
		fmt.Printf("%-24s serial %8.1fms  parallel %8.1fms  speedup %.2fx\n",
			r.Name, float64(r.SerialNs)/1e6, float64(r.ParallelNs)/1e6, r.Speedup)
	}
	fmt.Printf("wrote %s (workers=%d)\n", *out, report.Workers)
	return nil
}
