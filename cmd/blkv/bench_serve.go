package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"burstlink/internal/api"
	"burstlink/internal/cluster"
	"burstlink/internal/server"
)

// bench-json serve measures the service layer itself: blkload's
// closed-loop core driving an in-process blkd over loopback, once with
// the scenario cache and coalescing enabled and once with both disabled.
// The same deterministic schedule runs against both, so the delta is
// exactly what the service layer buys on a duplicate-heavy workload.

// serveReport is the top-level BENCH_serve.json document.
type serveReport struct {
	Concurrency int            `json:"concurrency"`
	Requests    int            `json:"requests"`
	DupRate     float64        `json:"dup_rate"`
	Seed        int64          `json:"seed"`
	Cached      api.LoadReport `json:"cached"`
	Uncached    api.LoadReport `json:"uncached"`
	// Speedup is cached throughput over uncached throughput.
	Speedup float64 `json:"speedup"`
	// Cluster holds the scale-out arms: the same schedule driven through
	// client-side consistent-hash sharding over 1, 2, 4, ... in-process
	// nodes. Same-host arms measure ownership and cache behavior under
	// scale-out — every node shares this machine's cores, so throughput
	// is not expected to scale linearly.
	Cluster []clusterArm `json:"cluster,omitempty"`
}

// clusterArm is one node-count arm of the scaling curve. The two
// asserted invariants are the ones that make sharding worth having:
// total node misses equals the schedule's distinct scenario count (each
// canonical key computed on exactly one node, exactly once) and the
// response bytes match the single-node arm byte for byte.
type clusterArm struct {
	Nodes      int            `json:"nodes"`
	Load       api.LoadReport `json:"load"`
	UniqueKeys int            `json:"unique_keys"`
	// NodeMisses sums cache_misses across nodes; equality with
	// UniqueKeys is the single-ownership proof.
	NodeMisses uint64 `json:"node_misses"`
	// Skew is max per-node requests over the even share.
	Skew float64 `json:"skew"`
	// ByteIdentical records that sampled responses matched the 1-node
	// arm's bytes exactly.
	ByteIdentical bool `json:"byte_identical"`
}

// runServeLoad starts an in-process server, drives the load schedule
// through it, drains it, and returns the load report plus the server's
// final counters (the segment-cache numbers live there).
func runServeLoad(cfg server.Config, opts api.LoadOptions) (api.LoadReport, api.Stats, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return api.LoadReport{}, api.Stats{}, err
	}
	srv := server.New(cfg)
	stop := srv.Start(l)
	rep, err := api.RunLoad(context.Background(), api.NewClient("http://"+l.Addr().String()), opts)
	stats := srv.Stats()
	if serr := stop(); err == nil {
		err = serr
	}
	return rep, stats, err
}

func benchServeCmd(args []string) error {
	fs := flag.NewFlagSet("bench-json serve", flag.ContinueOnError)
	out := fs.String("o", "", "output JSON file (default BENCH_serve.json, BENCH_delta.json with -sweep)")
	c := fs.Int("c", 64, "closed-loop worker count")
	n := fs.Int("n", 1000, "total requests per run")
	dup := fs.Float64("dup", 0.5, "duplicate-scenario fraction [0,1)")
	sweep := fs.Bool("sweep", false, "sweep-heavy workload: axis-neighbor cells, delta vs scratch simulation")
	seed := fs.Int64("seed", 1, "schedule seed")
	nodes := fs.String("nodes", "1,2,4", "comma-separated node counts for the cluster scaling arms (empty skips them)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := api.LoadOptions{
		Concurrency: *c,
		Requests:    *n,
		DupRate:     *dup,
		Seed:        *seed,
		Now:         time.Now,
	}
	if *sweep {
		if *out == "" {
			*out = "BENCH_delta.json"
		}
		return benchDelta(*out, opts)
	}
	if *out == "" {
		*out = "BENCH_serve.json"
	}

	cached, _, err := runServeLoad(server.Config{}, opts)
	if err != nil {
		return fmt.Errorf("bench serve (cached): %w", err)
	}
	if cached.Errors > 0 {
		return fmt.Errorf("bench serve (cached): %d request errors (first: %s)", cached.Errors, cached.FirstError)
	}
	uncached, _, err := runServeLoad(server.Config{DisableCache: true, DisableCoalesce: true}, opts)
	if err != nil {
		return fmt.Errorf("bench serve (uncached): %w", err)
	}
	if uncached.Errors > 0 {
		return fmt.Errorf("bench serve (uncached): %d request errors (first: %s)", uncached.Errors, uncached.FirstError)
	}

	report := serveReport{
		Concurrency: *c,
		Requests:    *n,
		DupRate:     *dup,
		Seed:        *seed,
		Cached:      cached,
		Uncached:    uncached,
	}
	if uncached.Throughput > 0 {
		report.Speedup = cached.Throughput / uncached.Throughput
	}
	if *nodes != "" {
		arms, err := benchClusterArms(*nodes, opts)
		if err != nil {
			return fmt.Errorf("bench serve (cluster): %w", err)
		}
		report.Cluster = arms
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}

	fmt.Printf("serve (c=%d, n=%d, dup=%.0f%%)\n", *c, *n, *dup*100)
	fmt.Printf("  cached    %8.1f req/s  p50 %8v  p99 %8v  hit ratio %.2f\n",
		cached.Throughput, cached.P50.Round(time.Microsecond), cached.P99.Round(time.Microsecond), cached.HitRatio)
	fmt.Printf("  uncached  %8.1f req/s  p50 %8v  p99 %8v  hit ratio %.2f\n",
		uncached.Throughput, uncached.P50.Round(time.Microsecond), uncached.P99.Round(time.Microsecond), uncached.HitRatio)
	fmt.Printf("  speedup   %.2fx\n", report.Speedup)
	for _, arm := range report.Cluster {
		fmt.Printf("  %d-node    %8.1f req/s  hit ratio %.2f  misses %d/%d unique  skew %.2fx  bytes ok %v\n",
			arm.Nodes, arm.Load.Throughput, arm.Load.HitRatio, arm.NodeMisses, arm.UniqueKeys, arm.Skew, arm.ByteIdentical)
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// benchClusterArms runs the schedule through client-side sharding over
// each requested node count and asserts single ownership (Σ node misses
// == distinct scenarios) and byte-identity against the 1-node arm.
func benchClusterArms(nodeList string, opts api.LoadOptions) ([]clusterArm, error) {
	var counts []int
	for _, part := range strings.Split(nodeList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -nodes entry %q", part)
		}
		counts = append(counts, v)
	}

	// The byte-identity probe replays the first distinct scenarios of the
	// schedule; the 1-node arm's bodies (or the first arm's, if 1 was not
	// requested) are the baseline the others must match byte for byte.
	schedule := api.Schedule(opts)
	uniqueKeys, probes := distinctRequests(schedule, 16)
	var baseline [][]byte

	var arms []clusterArm
	for _, count := range counts {
		arm, bodies, err := runClusterArm(count, opts, uniqueKeys, probes)
		if err != nil {
			return nil, err
		}
		if baseline == nil {
			baseline = bodies
			arm.ByteIdentical = true
		} else {
			arm.ByteIdentical = true
			for i := range bodies {
				if !bytes.Equal(bodies[i], baseline[i]) {
					return nil, fmt.Errorf("%d-node arm: response %d differs from the single-node bytes", count, i)
				}
			}
		}
		arms = append(arms, arm)
	}
	return arms, nil
}

// distinctRequests returns the number of distinct canonical scenarios in
// the schedule and up to max of them for the byte-identity probe.
func distinctRequests(schedule []api.SessionRequest, max int) (int, []api.SessionRequest) {
	seen := make(map[string]bool)
	var probes []api.SessionRequest
	for _, req := range schedule {
		req.Normalize()
		key := req.CacheKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		if len(probes) < max {
			probes = append(probes, req)
		}
	}
	return len(seen), probes
}

// runClusterArm starts count in-process nodes, drives the schedule
// through a sharded client, checks single ownership, and replays the
// probe scenarios for raw response bytes.
func runClusterArm(count int, opts api.LoadOptions, uniqueKeys int, probes []api.SessionRequest) (clusterArm, [][]byte, error) {
	arm := clusterArm{Nodes: count, UniqueKeys: uniqueKeys}
	urls := make([]string, count)
	stops := make([]func() error, count)
	for i := range urls {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return arm, nil, err
		}
		srv := server.New(server.Config{NodeID: fmt.Sprintf("node%d", i)})
		stops[i] = srv.Start(l)
		urls[i] = "http://" + l.Addr().String()
	}
	defer func() {
		for _, stop := range stops {
			_ = stop()
		}
	}()

	sc, ring, err := cluster.NewShardedClient(urls, cluster.DefaultVNodes)
	if err != nil {
		return arm, nil, err
	}
	rep, err := api.RunLoad(context.Background(), sc, opts)
	if err != nil {
		return arm, nil, err
	}
	if rep.Errors > 0 {
		return arm, nil, fmt.Errorf("%d-node arm: %d request errors (first: %s)", count, rep.Errors, rep.FirstError)
	}
	arm.Load = rep

	stats, err := sc.StatsAll(context.Background())
	if err != nil {
		return arm, nil, err
	}
	even := float64(rep.Requests) / float64(count)
	for _, st := range stats {
		arm.NodeMisses += st.CacheMisses
		if even > 0 && float64(st.Requests)/even > arm.Skew {
			arm.Skew = float64(st.Requests) / even
		}
	}
	if arm.NodeMisses != uint64(uniqueKeys) {
		return arm, nil, fmt.Errorf("%d-node arm: %d node misses for %d distinct scenarios — a key was computed on more than one node",
			count, arm.NodeMisses, uniqueKeys)
	}

	bodies := make([][]byte, len(probes))
	for i, req := range probes {
		owner := urls[ring.OwnerIndex(req.CacheKey())]
		body, err := rawSession(owner, req)
		if err != nil {
			return arm, nil, err
		}
		bodies[i] = body
	}
	return arm, bodies, nil
}

// rawSession POSTs req to base/v1/session and returns the exact
// response bytes, the currency of the byte-identity assertion.
func rawSession(base string, req api.SessionRequest) ([]byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/session", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	// Close failures after a full read carry no information we can act on.
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("raw session against %s: status %d", base, resp.StatusCode)
	}
	return body, nil
}
