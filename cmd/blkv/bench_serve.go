package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"burstlink/internal/api"
	"burstlink/internal/server"
)

// bench-json serve measures the service layer itself: blkload's
// closed-loop core driving an in-process blkd over loopback, once with
// the scenario cache and coalescing enabled and once with both disabled.
// The same deterministic schedule runs against both, so the delta is
// exactly what the service layer buys on a duplicate-heavy workload.

// serveReport is the top-level BENCH_serve.json document.
type serveReport struct {
	Concurrency int            `json:"concurrency"`
	Requests    int            `json:"requests"`
	DupRate     float64        `json:"dup_rate"`
	Seed        int64          `json:"seed"`
	Cached      api.LoadReport `json:"cached"`
	Uncached    api.LoadReport `json:"uncached"`
	// Speedup is cached throughput over uncached throughput.
	Speedup float64 `json:"speedup"`
}

// runServeLoad starts an in-process server, drives the load schedule
// through it, drains it, and returns the load report plus the server's
// final counters (the segment-cache numbers live there).
func runServeLoad(cfg server.Config, opts api.LoadOptions) (api.LoadReport, api.Stats, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return api.LoadReport{}, api.Stats{}, err
	}
	srv := server.New(cfg)
	stop := srv.Start(l)
	rep, err := api.RunLoad(context.Background(), api.NewClient("http://"+l.Addr().String()), opts)
	stats := srv.Stats()
	if serr := stop(); err == nil {
		err = serr
	}
	return rep, stats, err
}

func benchServeCmd(args []string) error {
	fs := flag.NewFlagSet("bench-json serve", flag.ContinueOnError)
	out := fs.String("o", "", "output JSON file (default BENCH_serve.json, BENCH_delta.json with -sweep)")
	c := fs.Int("c", 64, "closed-loop worker count")
	n := fs.Int("n", 1000, "total requests per run")
	dup := fs.Float64("dup", 0.5, "duplicate-scenario fraction [0,1)")
	sweep := fs.Bool("sweep", false, "sweep-heavy workload: axis-neighbor cells, delta vs scratch simulation")
	seed := fs.Int64("seed", 1, "schedule seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := api.LoadOptions{
		Concurrency: *c,
		Requests:    *n,
		DupRate:     *dup,
		Seed:        *seed,
		Now:         time.Now,
	}
	if *sweep {
		if *out == "" {
			*out = "BENCH_delta.json"
		}
		return benchDelta(*out, opts)
	}
	if *out == "" {
		*out = "BENCH_serve.json"
	}

	cached, _, err := runServeLoad(server.Config{}, opts)
	if err != nil {
		return fmt.Errorf("bench serve (cached): %w", err)
	}
	if cached.Errors > 0 {
		return fmt.Errorf("bench serve (cached): %d request errors (first: %s)", cached.Errors, cached.FirstError)
	}
	uncached, _, err := runServeLoad(server.Config{DisableCache: true, DisableCoalesce: true}, opts)
	if err != nil {
		return fmt.Errorf("bench serve (uncached): %w", err)
	}
	if uncached.Errors > 0 {
		return fmt.Errorf("bench serve (uncached): %d request errors (first: %s)", uncached.Errors, uncached.FirstError)
	}

	report := serveReport{
		Concurrency: *c,
		Requests:    *n,
		DupRate:     *dup,
		Seed:        *seed,
		Cached:      cached,
		Uncached:    uncached,
	}
	if uncached.Throughput > 0 {
		report.Speedup = cached.Throughput / uncached.Throughput
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}

	fmt.Printf("serve (c=%d, n=%d, dup=%.0f%%)\n", *c, *n, *dup*100)
	fmt.Printf("  cached    %8.1f req/s  p50 %8v  p99 %8v  hit ratio %.2f\n",
		cached.Throughput, cached.P50.Round(time.Microsecond), cached.P99.Round(time.Microsecond), cached.HitRatio)
	fmt.Printf("  uncached  %8.1f req/s  p50 %8v  p99 %8v  hit ratio %.2f\n",
		uncached.Throughput, uncached.P50.Round(time.Microsecond), uncached.P99.Round(time.Microsecond), uncached.HitRatio)
	fmt.Printf("  speedup   %.2fx\n", report.Speedup)
	fmt.Printf("wrote %s\n", *out)
	return nil
}
