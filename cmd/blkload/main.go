// Command blkload is a closed-loop load generator for blkd: a fixed
// schedule of session requests — a configurable fraction of which are
// exact duplicates, the near-duplicate workload shape the scenario
// cache exploits — driven by N workers issuing back to back. It reports
// throughput, latency percentiles, and the cache hit ratio observed
// through the X-Cache header, which is what makes the service's "heavy
// traffic" posture measurable instead of aspirational.
//
// Usage:
//
//	blkload [-url http://127.0.0.1:8080] [-c 64] [-n 2000]
//	        [-dup 0.5] [-sweep] [-seed 1] [-json report.json]
//	blkload -cluster http://node1:8080,http://node2:8080 [-vnodes 128] ...
//
// -sweep switches the schedule to an axis-neighbor walk (each new
// configuration moves exactly one knob), the sweep-shaped workload the
// server's delta-simulation segment cache exploits. After the run,
// blkload samples GET /v1/stats and reports the server-side segment
// cache counters alongside the client-observed result cache ratios.
//
// -fleet switches blkload from many session requests to one population
// request: POST /v1/fleet with -n devices and -seed as the population
// seed, streamed so progress renders live. The report becomes
// devices/sec plus the aggregate battery-impact percentiles, and the
// segment-cache counters show how much the fleet's devices shared.
//
// -cluster drives the same schedule through client-side consistent-hash
// sharding over the listed nodes: each request goes straight to the
// ring owner of its canonical cache key. After the run, blkload reports
// every node's counters and the per-node ownership skew (requests
// versus a perfectly even split).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"burstlink/internal/api"
	"burstlink/internal/cluster"
)

func main() {
	fs := flag.NewFlagSet("blkload", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "blkd base URL")
	clusterURLs := fs.String("cluster", "", "comma-separated node URLs for client-side consistent-hash sharding (overrides -url)")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per backend on the sharding ring")
	c := fs.Int("c", 64, "closed-loop worker count")
	n := fs.Int("n", 2000, "total requests")
	dup := fs.Float64("dup", 0.5, "fraction of requests duplicating an earlier one [0,1)")
	sweep := fs.Bool("sweep", false, "axis-neighbor sweep schedule (one knob moves per new configuration)")
	fleetRun := fs.Bool("fleet", false, "drive one streamed /v1/fleet population run of -n devices instead of session load")
	seed := fs.Int64("seed", 1, "schedule seed")
	jsonOut := fs.String("json", "", "also write the report as JSON to this file")
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2)
	}

	if *clusterURLs != "" {
		if err := runCluster(*clusterURLs, *vnodes, *c, *n, *dup, *sweep, *seed, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "blkload:", err)
			os.Exit(1)
		}
		return
	}

	client := api.NewClient(*url)
	if err := client.Health(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "blkload: %s is not healthy: %v\n", *url, err)
		os.Exit(1)
	}
	if *fleetRun {
		if err := runFleet(client, *n, uint64(*seed), *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "blkload:", err)
			os.Exit(1)
		}
		return
	}
	report, err := api.RunLoad(context.Background(), client, api.LoadOptions{
		Concurrency: *c,
		Requests:    *n,
		DupRate:     *dup,
		Sweep:       *sweep,
		Seed:        *seed,
		Now:         time.Now,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "blkload:", err)
		os.Exit(1)
	}

	printReport(os.Stdout, report)
	if stats, err := client.Stats(context.Background()); err == nil {
		printSegmentStats(os.Stdout, stats)
	} else {
		fmt.Fprintln(os.Stderr, "blkload: stats:", err)
	}
	if report.Errors > 0 {
		fmt.Fprintf(os.Stderr, "blkload: %d/%d requests failed (first: %s)\n",
			report.Errors, report.Requests, report.FirstError)
	}
	if *jsonOut != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "blkload:", err)
			os.Exit(1)
		}
		b = append(b, '\n')
		if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "blkload:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if report.Errors > 0 {
		os.Exit(1)
	}
}

// clusterReport is the JSON form of a sharded load run: the load
// report plus every node's counters and the observed ownership skew.
type clusterReport struct {
	Nodes  []string       `json:"nodes"`
	VNodes int            `json:"vnodes"`
	Load   api.LoadReport `json:"load"`
	Stats  []api.Stats    `json:"node_stats"`
	// Skew is max per-node requests over the even share (1.0 = perfectly
	// balanced).
	Skew float64 `json:"skew"`
}

// runCluster drives the session schedule through client-side sharding
// and reports per-node counters and the ownership skew.
func runCluster(urls string, vnodes, c, n int, dup float64, sweep bool, seed int64, jsonOut string) error {
	members := cluster.SplitMembers(urls)
	sc, ring, err := cluster.NewShardedClient(members, vnodes)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if err := sc.Health(ctx); err != nil {
		return err
	}
	before, err := sc.StatsAll(ctx)
	if err != nil {
		return err
	}
	report, err := api.RunLoad(ctx, sc, api.LoadOptions{
		Concurrency: c,
		Requests:    n,
		DupRate:     dup,
		Sweep:       sweep,
		Seed:        seed,
		Now:         time.Now,
	})
	if err != nil {
		return err
	}
	after, err := sc.StatsAll(ctx)
	if err != nil {
		return err
	}

	printReport(os.Stdout, report)
	rep := clusterReport{Nodes: ring.Nodes(), VNodes: ring.VNodes(), Load: report, Stats: after}
	even := float64(report.Requests) / float64(len(after))
	for i, st := range after {
		sent := st.Requests - before[i].Requests
		fmt.Printf("node %-28s %6d requests  %d hits, %d coalesced, %d misses (%d cached entries)\n",
			st.Node, sent, st.CacheHits-before[i].CacheHits, st.Coalesced-before[i].Coalesced,
			st.CacheMisses-before[i].CacheMisses, st.CacheEntries)
		if even > 0 && float64(sent)/even > rep.Skew {
			rep.Skew = float64(sent) / even
		}
	}
	fmt.Printf("skew        %.2fx the even share across %d nodes (vnodes=%d)\n", rep.Skew, len(after), ring.VNodes())
	if report.Errors > 0 {
		fmt.Fprintf(os.Stderr, "blkload: %d/%d requests failed (first: %s)\n",
			report.Errors, report.Requests, report.FirstError)
	}
	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	if report.Errors > 0 {
		return fmt.Errorf("%d requests failed", report.Errors)
	}
	return nil
}

// fleetReport is the JSON form of a fleet run's client-side report.
type fleetReport struct {
	Devices       int               `json:"devices"`
	Unique        int               `json:"unique_configs"`
	Wall          time.Duration     `json:"wall_ns"`
	DevicesPerSec float64           `json:"devices_per_sec"`
	Response      api.FleetResponse `json:"response"`
}

// runFleet drives one streamed population run and reports devices/sec
// plus the aggregate distributions.
func runFleet(client *api.Client, size int, seed uint64, jsonOut string) error {
	req := api.FleetRequest{Size: size, Seed: seed}
	start := time.Now()
	res, err := client.FleetStream(context.Background(), req, func(p api.FleetProgress) {
		fmt.Fprintf(os.Stderr, "\rfleet       %d/%d devices", p.Done, p.Total)
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	rep := fleetReport{
		Devices:       res.Devices,
		Unique:        res.Unique,
		Wall:          wall,
		DevicesPerSec: float64(res.Devices) / wall.Seconds(),
		Response:      res,
	}
	fmt.Printf("fleet       %d devices (%d unique configs), scheme %s\n", res.Devices, res.Unique, res.Scheme)
	fmt.Printf("wall        %v\n", wall.Round(time.Millisecond))
	fmt.Printf("throughput  %.1f devices/s\n", rep.DevicesPerSec)
	for _, m := range res.Metrics {
		if m.Hist == nil {
			continue
		}
		fmt.Printf("%-11s mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f %s\n",
			m.Name, m.Mean, m.P50, m.P95, m.P99, m.Unit)
	}
	if stats, err := client.Stats(context.Background()); err == nil {
		printSegmentStats(os.Stdout, stats)
	} else {
		fmt.Fprintln(os.Stderr, "blkload: stats:", err)
	}
	if jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}

// printReport renders the human-readable summary.
func printReport(w *os.File, r api.LoadReport) {
	fmt.Fprintf(w, "requests    %d (%d errors), %d workers, dup %.0f%%\n",
		r.Requests, r.Errors, r.Concurrency, r.DupRate*100)
	fmt.Fprintf(w, "wall        %v\n", r.Wall.Round(time.Millisecond))
	fmt.Fprintf(w, "throughput  %.1f req/s\n", r.Throughput)
	fmt.Fprintf(w, "latency     p50 %v  p95 %v  p99 %v\n",
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	fmt.Fprintf(w, "cache       %d hits, %d coalesced, %d misses (hit ratio %.2f)\n",
		r.Hits, r.Coalesced, r.Misses, r.HitRatio)
}

// printSegmentStats renders the server-side delta-simulation segment
// cache counters from /v1/stats.
func printSegmentStats(w *os.File, s api.Stats) {
	fmt.Fprintf(w, "segments    %d hits, %d misses, %d coalesced, %d evictions (hit ratio %.2f, %d entries)\n",
		s.SegmentHits, s.SegmentMisses, s.SegmentCoalesced, s.SegmentEvictions, s.SegmentHitRatio, s.SegmentEntries)
}
