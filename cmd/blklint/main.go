// Command blklint runs BurstLink's domain-aware static analyzers over the
// module: determinism (determcheck), unit safety (unitcheck), concurrency
// discipline (parcheck), pool hygiene (poolcheck), and dropped errors
// (errdrop). See README.md "Static analysis" and DESIGN.md §4.6.
//
// Usage:
//
//	go run ./cmd/blklint [-json] [-only analyzer[,analyzer]] [packages]
//
// Packages default to ./... . Findings print as
// file:line:col: analyzer: message; -json emits the machine-readable
// schema instead. Exit status: 0 clean, 1 findings, 2 operational error.
// Suppress a finding with //lint:ignore <analyzer> <reason> on the
// finding's line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"burstlink/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("blklint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	only := fs.String("only", "", "comma-separated analyzer subset (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: blklint [-json] [-only analyzers] [packages]")
		fmt.Fprintln(stderr, "analyzers:")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "blklint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "blklint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "blklint: %v\n", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "blklint: typecheck %s: %v\n", pkg.PkgPath, terr)
		}
	}

	findings := lint.RunAnalyzers(pkgs, analyzers)
	if *jsonOut {
		if err := json.NewEncoder(stdout).Encode(lint.Report(findings)); err != nil {
			fmt.Fprintf(stderr, "blklint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
