// Command blklint runs BurstLink's domain-aware static analyzers over the
// module: determinism (determcheck), unit safety (unitcheck), concurrency
// discipline (parcheck), pool hygiene (poolcheck), dropped errors
// (errdrop), the interprocedural CFG-based checks (gatecheck, ctxcheck,
// lockcheck, detflow), key exhaustiveness for the segment cache
// (memokeycheck), the value-flow cache-integrity pair (aliascheck,
// purecheck), and the concurrency-soundness layer (lockorder, leakcheck,
// chancheck). See README.md "Static analysis" and DESIGN.md
// §4.6/§4.8/§4.11/§4.13.
//
// Usage:
//
//	go run ./cmd/blklint [-json|-sarif] [-only analyzer[,analyzer]] [-changed ref] [-cache] [-cache-dir dir] [packages]
//
// Packages default to ./... . Findings print as
// file:line:col: analyzer: message; -json emits the machine-readable
// schema and -sarif a SARIF 2.1.0 log instead. -changed ref scopes the
// run to packages with Go files differing from the git ref (the local
// pre-commit loop); CI runs the full module. -cache serves unchanged
// packages from the incremental fact cache (default .blklint-cache under
// the module root; override with -cache-dir) and prints a stats line to
// stderr: "blklint: fact cache: N/M packages cached, K analyzed".
// Exit status: 0 clean, 1 findings, 2 operational error. Suppress a
// finding with //lint:ignore <analyzer> <reason> on the finding's line
// or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"burstlink/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("blklint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	only := fs.String("only", "", "comma-separated analyzer subset (default: all)")
	changed := fs.String("changed", "", "analyze only packages with Go files changed since this git ref")
	useCache := fs.Bool("cache", false, "serve unchanged packages from the incremental fact cache")
	cacheDir := fs.String("cache-dir", ".blklint-cache", "fact cache directory (relative paths resolve against the module root)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: blklint [-json|-sarif] [-only analyzers] [-changed ref] [-cache] [-cache-dir dir] [packages]")
		fmt.Fprintln(stderr, "analyzers:")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "blklint: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "blklint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "blklint: %v\n", err)
		return 2
	}
	// SARIF artifact URIs are relative to the module root, so the log
	// matches the repository tree no matter where blklint was invoked.
	root := cwd
	if modRoot, err := lint.FindModuleRoot(cwd); err == nil {
		root = modRoot
	}

	patterns := fs.Args()
	if *changed != "" {
		if *useCache {
			fmt.Fprintln(stderr, "blklint: -changed and -cache are mutually exclusive")
			return 2
		}
		if len(patterns) != 0 {
			fmt.Fprintln(stderr, "blklint: -changed and explicit packages are mutually exclusive")
			return 2
		}
		patterns, err = lint.ChangedPatterns(root, *changed)
		if err != nil {
			fmt.Fprintf(stderr, "blklint: %v\n", err)
			return 2
		}
		if len(patterns) == 0 {
			// Nothing Go-visible changed: a clean run by definition.
			return emit(nil, analyzers, root, *jsonOut, *sarifOut, stdout, stderr)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *useCache {
		dir := *cacheDir
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, dir)
		}
		findings, stats, err := lint.RunCached(cwd, dir, patterns, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "blklint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "blklint: fact cache: %d/%d packages cached, %d analyzed\n",
			stats.Cached, stats.Packages, stats.Analyzed)
		return emit(findings, analyzers, root, *jsonOut, *sarifOut, stdout, stderr)
	}
	pkgs, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "blklint: %v\n", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "blklint: typecheck %s: %v\n", pkg.PkgPath, terr)
		}
	}

	findings := lint.RunAnalyzers(pkgs, analyzers)
	return emit(findings, analyzers, root, *jsonOut, *sarifOut, stdout, stderr)
}

// emit writes findings in the selected format and maps them to the exit
// status contract (0 clean, 1 findings, 2 operational error).
func emit(findings []lint.Finding, analyzers []*lint.Analyzer, root string, jsonOut, sarifOut bool, stdout, stderr *os.File) int {
	switch {
	case jsonOut:
		if err := json.NewEncoder(stdout).Encode(lint.Report(findings)); err != nil {
			fmt.Fprintf(stderr, "blklint: %v\n", err)
			return 2
		}
	case sarifOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lint.SARIFReport(findings, analyzers, root)); err != nil {
			fmt.Fprintf(stderr, "blklint: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
