// Command blkd is the BurstLink simulation daemon: the repository's
// engines served as versioned JSON endpoints with a scenario-keyed
// result cache, request coalescing, and bounded concurrency with
// backpressure. See internal/server for the service layer and
// internal/api for the wire contract.
//
// Usage:
//
//	blkd [-addr :8080] [-cache 4096] [-segcache 8192] [-concurrency N]
//	     [-queue 64] [-timeout 30s] [-drain 10s] [-no-coalesce]
//
// Endpoints:
//
//	POST /v1/session    run one streaming session under a scheme
//	POST /v1/sweep      fan a scheme × resolution × fps sweep out
//	GET  /v1/exp        list experiment IDs
//	GET  /v1/exp/{id}   run one §6 experiment table
//	GET  /v1/stats      service counters (cache, rejections, peaks)
//	GET  /healthz       liveness probe
//
// blkd drains gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests finish (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"burstlink/internal/server"
)

func main() {
	fs := flag.NewFlagSet("blkd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheN := fs.Int("cache", 4096, "scenario result cache entries (0 disables caching)")
	segN := fs.Int("segcache", 8192, "delta-simulation segment cache entries (0 disables delta simulation)")
	conc := fs.Int("concurrency", 0, "max concurrent model executions (0 = 2×GOMAXPROCS)")
	queue := fs.Int("queue", 64, "max requests queued for an execution slot before 429")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request execution deadline")
	drain := fs.Duration("drain", 10*time.Second, "graceful drain bound on shutdown")
	noCoalesce := fs.Bool("no-coalesce", false, "disable coalescing of identical in-flight requests")
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Addr:                *addr,
		MaxConcurrent:       *conc,
		QueueDepth:          *queue,
		CacheEntries:        *cacheN,
		DisableCache:        *cacheN == 0,
		SegmentCacheEntries: *segN,
		DisableDelta:        *segN == 0,
		DisableCoalesce:     *noCoalesce,
		RequestTimeout:      *timeout,
		DrainTimeout:        *drain,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("blkd listening on %s (cache=%d, segcache=%d, queue=%d, timeout=%v)", *addr, *cacheN, *segN, *queue, *timeout)
	if err := srv.ListenAndServe(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "blkd:", err)
		os.Exit(1)
	}
	log.Printf("blkd drained and stopped")
}
