// Command blkd is the BurstLink simulation daemon: the repository's
// engines served as versioned JSON endpoints with a scenario-keyed
// result cache, request coalescing, and bounded concurrency with
// backpressure. See internal/server for the service layer and
// internal/api for the wire contract.
//
// Usage:
//
//	blkd [-addr :8080] [-cache 4096] [-segcache 8192] [-concurrency N]
//	     [-queue 64] [-timeout 30s] [-drain 10s] [-no-coalesce]
//	     [-node NAME] [-warm snapshot.gob]
//	blkd -route http://node1:8080,http://node2:8080 [-vnodes 128]
//
// Endpoints:
//
//	POST /v1/session    run one streaming session under a scheme
//	POST /v1/sweep      fan a scheme × resolution × fps sweep out
//	POST /v1/fleet      run a device-population simulation
//	GET  /v1/exp        list experiment IDs
//	GET  /v1/exp/{id}   run one §6 experiment table
//	GET  /v1/stats      service counters (cache, rejections, peaks)
//	GET  /v1/health     node identity and load/fill document
//	GET  /v1/snapshot   cache snapshot export for warm restarts
//	GET  /healthz       liveness probe
//
// With -route, blkd runs as a thin cluster router instead of a compute
// node: each request is canonicalized to its result-cache key and
// forwarded to the consistent-hash owner among the listed backends, so
// every scenario's cache entry lives on exactly one node. With -warm,
// a compute node imports a snapshot (taken via GET /v1/snapshot from a
// previous instance) before serving, restarting with its caches hot.
//
// blkd drains gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests finish (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"burstlink/internal/cluster"
	"burstlink/internal/server"
)

func main() {
	fs := flag.NewFlagSet("blkd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheN := fs.Int("cache", 4096, "scenario result cache entries (0 disables caching)")
	segN := fs.Int("segcache", 8192, "delta-simulation segment cache entries (0 disables delta simulation)")
	conc := fs.Int("concurrency", 0, "max concurrent model executions (0 = 2×GOMAXPROCS)")
	queue := fs.Int("queue", 64, "max requests queued for an execution slot before 429")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request execution deadline")
	drain := fs.Duration("drain", 10*time.Second, "graceful drain bound on shutdown")
	noCoalesce := fs.Bool("no-coalesce", false, "disable coalescing of identical in-flight requests")
	node := fs.String("node", "", "node name reported in /v1/health and /v1/stats (default blkd)")
	warm := fs.String("warm", "", "import a cache snapshot file before serving (warm restart)")
	route := fs.String("route", "", "run as a cluster router over these comma-separated backend URLs")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per backend on the routing ring")
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *route != "" {
		if err := runRouter(ctx, *addr, *node, *route, *vnodes, *drain); err != nil {
			fmt.Fprintln(os.Stderr, "blkd:", err)
			os.Exit(1)
		}
		log.Printf("blkd router drained and stopped")
		return
	}

	srv := server.New(server.Config{
		Addr:                *addr,
		NodeID:              *node,
		MaxConcurrent:       *conc,
		QueueDepth:          *queue,
		CacheEntries:        *cacheN,
		DisableCache:        *cacheN == 0,
		SegmentCacheEntries: *segN,
		DisableDelta:        *segN == 0,
		DisableCoalesce:     *noCoalesce,
		RequestTimeout:      *timeout,
		DrainTimeout:        *drain,
	})
	if *warm != "" {
		f, err := os.Open(*warm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "blkd:", err)
			os.Exit(1)
		}
		snap, err := srv.Warm(f)
		_ = f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "blkd: warm %s: %v\n", *warm, err)
			os.Exit(1)
		}
		log.Printf("blkd warmed from %s (node %s: %d results, %d segments, %d skipped)",
			*warm, snap.Node, len(snap.Results), len(snap.Segments), snap.SegmentsSkipped)
	}

	log.Printf("blkd listening on %s (cache=%d, segcache=%d, queue=%d, timeout=%v)", *addr, *cacheN, *segN, *queue, *timeout)
	if err := srv.ListenAndServe(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "blkd:", err)
		os.Exit(1)
	}
	log.Printf("blkd drained and stopped")
}

// runRouter serves the consistent-hash routing handler on addr until
// ctx is canceled, reusing the compute node's drain lifecycle.
func runRouter(ctx context.Context, addr, node, route string, vnodes int, drain time.Duration) error {
	backends := cluster.SplitMembers(route)
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Node:     node,
		Backends: backends,
		VNodes:   vnodes,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("blkd routing on %s over %d backends (vnodes=%d)", addr, len(backends), vnodes)
	return server.ServeHandler(ctx, l, rt.Handler(), drain)
}
