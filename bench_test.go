// Package burstlink's root bench harness regenerates every table and
// figure in the paper's evaluation (§6). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its experiment driver once per iteration and
// reports the headline metric of the corresponding figure as a custom
// benchmark metric (e.g. reduction percentages), so `go test -bench` output
// doubles as a compact reproduction log. Ablation benches at the bottom
// sweep the design parameters DESIGN.md §4.4 calls out.
package burstlink

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"burstlink/internal/baseline"
	"burstlink/internal/core"
	"burstlink/internal/exp"
	"burstlink/internal/par"
	"burstlink/internal/pipeline"
	"burstlink/internal/power"
	"burstlink/internal/units"
	"burstlink/internal/workload"
)

// runExp executes an experiment driver b.N times and returns the last
// table.
func runExp(b *testing.B, id string) exp.Table {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tab exp.Table
	for i := 0; i < b.N; i++ {
		tab, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

// cellPct parses "41.2%" into 41.2 for metric reporting.
func cellPct(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		b.Fatalf("bad cell %q: %v", s, err)
	}
	return v
}

func BenchmarkFig1BaselineBreakdown(b *testing.B) {
	tab := runExp(b, "fig1")
	b.ReportMetric(cellPct(b, tab.Rows[len(tab.Rows)-1][4]), "4K_total_vs_FHD_%")
}

func BenchmarkFig3BaselineTimeline(b *testing.B) {
	runExp(b, "fig3")
}

func BenchmarkFig4MixedWorkload(b *testing.B) {
	runExp(b, "fig4")
}

func BenchmarkTable2PowerComparison(b *testing.B) {
	tab := runExp(b, "table2")
	// Report the two AvgP rows.
	for _, row := range tab.Rows {
		if row[1] == "AvgP" {
			v, _ := strconv.ParseFloat(strings.Fields(row[2])[0], 64)
			b.ReportMetric(v, row[0]+"_avg_mW")
		}
	}
}

func BenchmarkFig6BypassTimeline(b *testing.B) {
	runExp(b, "fig6")
}

func BenchmarkFig7BurstLinkTimeline(b *testing.B) {
	runExp(b, "fig7")
}

func BenchmarkFig9PlanarEnergy30FPS(b *testing.B) {
	tab := runExp(b, "fig9")
	b.ReportMetric(cellPct(b, tab.Rows[0][4]), "FHD_reduction_%")
	b.ReportMetric(cellPct(b, tab.Rows[2][4]), "4K_reduction_%")
	b.ReportMetric(cellPct(b, tab.Rows[3][4]), "5K_reduction_%")
}

func BenchmarkFig10EnergyBreakdown(b *testing.B) {
	tab := runExp(b, "fig10")
	// DRAM reduction factor at FHD (row 1, last column, "3.8x" style).
	f, _ := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[1][5], "x"), 64)
	b.ReportMetric(f, "FHD_DRAM_reduction_x")
}

func BenchmarkFig11aVRWorkloads(b *testing.B) {
	tab := runExp(b, "fig11a")
	for _, row := range tab.Rows {
		b.ReportMetric(cellPct(b, row[3]), row[0]+"_%")
	}
}

func BenchmarkFig11bVRResolutions(b *testing.B) {
	tab := runExp(b, "fig11b")
	b.ReportMetric(cellPct(b, tab.Rows[0][2]), "eye960_%")
	b.ReportMetric(cellPct(b, tab.Rows[len(tab.Rows)-1][2]), "eye1440_%")
}

func BenchmarkFig12PlanarEnergy60FPS(b *testing.B) {
	tab := runExp(b, "fig12")
	b.ReportMetric(cellPct(b, tab.Rows[0][4]), "FHD_reduction_%")
	b.ReportMetric(cellPct(b, tab.Rows[3][4]), "5K_reduction_%")
}

func BenchmarkFig13FBCComparison(b *testing.B) {
	tab := runExp(b, "fig13")
	b.ReportMetric(cellPct(b, tab.Rows[0][3]), "4K_FBC50_%")
	b.ReportMetric(cellPct(b, tab.Rows[0][4]), "4K_BurstLink_%")
}

func BenchmarkFig14aLocalPlayback(b *testing.B) {
	tab := runExp(b, "fig14a")
	for _, row := range tab.Rows {
		b.ReportMetric(cellPct(b, row[2]), strings.ReplaceAll(row[0], " ", "")+"_%")
	}
}

func BenchmarkFig14bOtherWorkloads(b *testing.B) {
	tab := runExp(b, "fig14b")
	for _, row := range tab.Rows {
		b.ReportMetric(cellPct(b, row[1]), strings.ReplaceAll(row[0], " ", "")+"_FHD_%")
	}
}

func BenchmarkZhangComparison(b *testing.B) {
	tab := runExp(b, "zhang")
	b.ReportMetric(cellPct(b, tab.Rows[0][1]), "zhang_%")
	b.ReportMetric(cellPct(b, tab.Rows[1][1]), "burstlink_%")
}

func BenchmarkVIPComparison(b *testing.B) {
	tab := runExp(b, "vip")
	b.ReportMetric(cellPct(b, tab.Rows[0][1]), "vip_%")
	b.ReportMetric(cellPct(b, tab.Rows[1][1]), "burstlink_%")
}

func BenchmarkModelValidation(b *testing.B) {
	tab := runExp(b, "valid")
	for _, row := range tab.Rows {
		acc, _ := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		b.ReportMetric(acc, strings.Fields(row[0])[0]+"_accuracy_%")
	}
}

// --- Ablations (DESIGN.md §4.4) ---

// reductionFor evaluates full BurstLink vs baseline on a platform.
func reductionFor(b *testing.B, p pipeline.Platform, s pipeline.Scenario) float64 {
	b.Helper()
	m := power.Default()
	load := power.LoadOf(p, s)
	base, err := pipeline.Conventional(p, s)
	if err != nil {
		b.Fatal(err)
	}
	full, err := core.BurstLink(p, s)
	if err != nil {
		b.Fatal(err)
	}
	return 100 * (1 - float64(m.Evaluate(full, load).Average)/float64(m.Evaluate(base, load).Average))
}

// BenchmarkAblationDCBufferSize sweeps the DC buffer (chunk) size: smaller
// chunks mean more C2/C8 alternations and more transition energy in the
// baseline.
func BenchmarkAblationDCBufferSize(b *testing.B) {
	s := pipeline.Planar(units.R4K, 60, 30)
	for i := 0; i < b.N; i++ {
		for _, size := range []units.ByteSize{128 * units.KB, 512 * units.KB, 2 * units.MB} {
			p := pipeline.DefaultPlatform()
			p.DCBufSize = size
			red := reductionFor(b, p, s)
			if i == 0 {
				b.ReportMetric(red, "buf"+strconv.FormatInt(int64(size/units.KB), 10)+"KB_%")
			}
		}
	}
}

// BenchmarkAblationEDPBandwidth sweeps the burst link bandwidth (eDP 1.3
// vs 1.4 vs a hypothetical 2x): higher bandwidth, longer C9 residency.
// eDP 1.3 cannot even carry 5K 60FPS in burst mode (20.5 ms > the 16.7 ms
// window); that infeasibility reports as 0.
func BenchmarkAblationEDPBandwidth(b *testing.B) {
	s := pipeline.Planar(units.R5K, 60, 60) // link-bound at 5K
	m := power.Default()
	cfgs := map[string]func(p *pipeline.Platform){
		"eDP1.3": func(p *pipeline.Platform) { p.Link.LaneRate = 5.4 * units.Gbps },
		"eDP1.4": func(p *pipeline.Platform) {},
		"2x":     func(p *pipeline.Platform) { p.Link.LaneRate = 16.2 * units.Gbps },
	}
	for i := 0; i < b.N; i++ {
		for name, mod := range cfgs {
			p := pipeline.DefaultPlatform()
			mod(&p)
			load := power.LoadOf(p, s)
			base, err := pipeline.Conventional(p, s)
			if err != nil {
				b.Fatal(err)
			}
			red := 0.0 // infeasible burst configuration
			if full, err := core.BurstLink(p, s); err == nil {
				red = 100 * (1 - float64(m.Evaluate(full, load).Average)/float64(m.Evaluate(base, load).Average))
			}
			if i == 0 {
				b.ReportMetric(red, name+"_%")
			}
		}
	}
}

// BenchmarkAblationOrchestrationOffload compares BurstLink with and
// without the PMU-firmware orchestration offload (§4.4 change 2).
func BenchmarkAblationOrchestrationOffload(b *testing.B) {
	s := pipeline.Planar(units.FHD, 60, 30)
	for i := 0; i < b.N; i++ {
		with := pipeline.DefaultPlatform()
		without := pipeline.DefaultPlatform()
		without.OrchTimeBL = without.OrchTime // no offload
		rw := reductionFor(b, with, s)
		ro := reductionFor(b, without, s)
		if i == 0 {
			b.ReportMetric(rw, "with_offload_%")
			b.ReportMetric(ro, "without_offload_%")
		}
	}
}

// BenchmarkAblationFBCRateSweep sweeps FBC compression rates at 4K.
func BenchmarkAblationFBCRateSweep(b *testing.B) {
	p := pipeline.DefaultPlatform()
	m := power.Default()
	s := pipeline.Planar(units.R4K, 60, 60)
	load := power.LoadOf(p, s)
	base, err := pipeline.Conventional(p, s)
	if err != nil {
		b.Fatal(err)
	}
	ref := float64(m.Evaluate(base, load).Average)
	for i := 0; i < b.N; i++ {
		for _, rate := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
			tl, err := baseline.FBC(p, s, baseline.DefaultFBC(rate))
			if err != nil {
				b.Fatal(err)
			}
			red := 100 * (1 - float64(m.Evaluate(tl, load).Average)/ref)
			if i == 0 {
				b.ReportMetric(red, "rate"+strconv.Itoa(int(rate*100))+"_%")
			}
		}
	}
}

// BenchmarkFunctionalPipelines measures the end-to-end functional
// simulators (real codec through real panel).
func BenchmarkFunctionalPipelines(b *testing.B) {
	p := pipeline.DefaultPlatform()
	cfg := pipeline.FunctionalConfig{Width: 96, Height: 64, Frames: 4, FPS: 30, Refresh: 60}
	b.Run("conventional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.RunFunctional(p, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("burstlink", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunFunctional(p, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExpSweep runs the complete paper sweep (every Registry
// experiment) serially and on the worker pool, reporting the pool's
// wall-clock speedup as speedup_x (≈1 on a single-core machine). The
// parallel sweep is what `burstlink run all` executes.
func BenchmarkExpSweep(b *testing.B) {
	exps := exp.Registry()
	b.Run("serial", func(b *testing.B) {
		defer par.SetWorkers(par.SetWorkers(1))
		for i := 0; i < b.N; i++ {
			if _, err := exp.RunAll(context.Background(), exps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		defer par.SetWorkers(par.SetWorkers(1))
		start := time.Now()
		if _, err := exp.RunAll(context.Background(), exps); err != nil {
			b.Fatal(err)
		}
		serial := time.Since(start)
		par.SetWorkers(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := exp.RunAll(context.Background(), exps); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if per := b.Elapsed() / time.Duration(b.N); per > 0 {
			b.ReportMetric(float64(serial)/float64(per), "speedup_x")
		}
	})
}

// BenchmarkUIWorkloads measures the Fig 14(b) scheduler pair.
func BenchmarkUIWorkloads(b *testing.B) {
	p := pipeline.DefaultPlatform()
	for i := 0; i < b.N; i++ {
		for _, w := range workload.Fig14bWorkloads() {
			if _, err := workload.UIConventional(p, w, units.FHD, 60); err != nil {
				b.Fatal(err)
			}
			if _, err := workload.UIBurst(p, w, units.FHD, 60); err != nil {
				b.Fatal(err)
			}
		}
	}
}
